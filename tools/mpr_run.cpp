// mpr_run — run one measurement on the simulated testbed from the command
// line and print a report (text or JSON).
//
//   mpr_run --mode mp2 --carrier att --cc olia --size 4m --seed 7
//   mpr_run --mode sp-wifi --size 512k --json
//
// Flags:
//   --mode     sp-wifi | sp-cell | mp2 | mp4        (default mp2)
//   --carrier  att | verizon | sprint               (default att)
//   --cc       coupled | olia | reno | vegas       (default coupled)
//   --sched    minrtt | rr | weighted[:w1,w2,...] | redundant   (default minrtt)
//              weighted takes per-subflow shares, e.g. --sched weighted:2,1
//   --size     object bytes, k/m/g suffixes         (default 4m)
//   --seed     RNG seed                             (default 1)
//   --hotspot  use the public coffee-shop WiFi profile
//   --simsyn   simultaneous SYNs
//   --backup   join cellular in backup mode
//   --codel    CoDel on the cellular downlink
//   --scenario fault-schedule file applied to every rep (see netem/faults.h)
//   --checksum       enable the RFC 6824 §3.3 DSS checksum
//   --no-fallback    refuse plain-TCP fallback (stripped handshakes fail)
//   --teardown       tear down the connection on a checksum failure
//   --max-sim-time   watchdog: abort after this much simulated time (seconds)
//   --max-events     watchdog: abort after this many simulator events
//   --reps     repetitions (default 1)
//   --jobs     worker threads for the reps (default MPR_JOBS, else all cores)
//   --json     machine-readable output
//
// Population-campaign mode (see EXPERIMENTS.md "Population campaigns"):
//   mpr_run --campaign pop.spec --checkpoint pop.ckpt
//   mpr_run --campaign pop.spec --checkpoint pop.ckpt --resume
//
//   --campaign   campaign spec file; replaces the single-run flags above
//   --checkpoint checkpoint path (written atomically every checkpoint-every
//                users and on SIGINT/SIGTERM)
//   --resume     continue from --checkpoint instead of starting over
//   Exit codes: 0 complete, 1 error, 2 failure budget exhausted,
//               128+signal when interrupted (checkpoint written first).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cli_flags.h"
#include "experiment/campaign.h"
#include "experiment/carriers.h"
#include "experiment/run.h"
#include "experiment/series.h"
#include "sim/thread_pool.h"

using namespace mpr;
using namespace mpr::experiment;

namespace {

PathMode parse_mode(const std::string& s) {
  if (s == "sp-wifi") return PathMode::kSingleWifi;
  if (s == "sp-cell") return PathMode::kSingleCellular;
  if (s == "mp4") return PathMode::kMptcp4;
  return PathMode::kMptcp2;
}

Carrier parse_carrier(const std::string& s) {
  if (s == "verizon" || s == "vzw") return Carrier::kVerizon;
  if (s == "sprint") return Carrier::kSprint;
  return Carrier::kAtt;
}

core::CcKind parse_cc(const std::string& s) {
  if (s == "olia") return core::CcKind::kOlia;
  if (s == "reno") return core::CcKind::kReno;
  if (s == "vegas") return core::CcKind::kVegas;
  return core::CcKind::kCoupled;
}

/// Parses `--sched` (name, optionally `weighted:w1,w2,...`) into the config.
/// Returns false on an unknown name or malformed weight list.
bool parse_sched(const std::string& spec, RunConfig& rc) {
  std::string name = spec;
  std::string weight_list;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    weight_list = spec.substr(colon + 1);
  }
  const auto kind = core::scheduler_from_string(name);
  if (!kind) return false;
  rc.scheduler = *kind;
  rc.scheduler_weights.clear();
  if (weight_list.empty()) return true;
  if (*kind != core::SchedulerKind::kWeighted) return false;
  std::size_t pos = 0;
  while (pos <= weight_list.size()) {
    const std::size_t comma = weight_list.find(',', pos);
    const std::string tok =
        weight_list.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    try {
      const double w = std::stod(tok);
      if (w <= 0) return false;
      rc.scheduler_weights.push_back(w);
    } catch (...) {
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !rc.scheduler_weights.empty();
}

void print_json(const RunResult& r) {
  std::printf(
      "{\"completed\":%s,\"outcome\":\"%s\",\"download_time_s\":%.6f,"
      "\"cellular_fraction\":%.4f,"
      "\"wifi\":{\"bytes\":%llu,\"loss\":%.5f,\"rtt_samples\":%zu},"
      "\"cellular\":{\"bytes\":%llu,\"loss\":%.5f,\"rtt_samples\":%zu},"
      "\"energy_j\":{\"wifi\":%.3f,\"cellular\":%.3f},"
      "\"reinjections\":%llu,\"redundant_chunks\":%llu,\"penalizations\":%llu}\n",
      r.completed ? "true" : "false", to_string(r.outcome).c_str(), r.download_time_s,
      r.cellular_fraction(),
      static_cast<unsigned long long>(r.wifi.bytes_received), r.wifi.loss_rate(),
      r.wifi.rtt_ms.size(), static_cast<unsigned long long>(r.cellular.bytes_received),
      r.cellular.loss_rate(), r.cellular.rtt_ms.size(), r.wifi_energy_j, r.cellular_energy_j,
      static_cast<unsigned long long>(r.reinjections),
      static_cast<unsigned long long>(r.redundant_chunks),
      static_cast<unsigned long long>(r.penalizations));
}

void print_text(const RunResult& r) {
  std::printf("completed:        %s\n",
              r.completed ? "yes" : (r.failed ? "NO (connection failed)" : "NO (timeout)"));
  std::printf("outcome:          %s\n", to_string(r.outcome).c_str());
  if (r.sim_stats.fallback_plain_tcp > 0 || r.sim_stats.fallback_infinite_mapping > 0) {
    std::printf("fallback:         plain_tcp=%llu infinite_mapping=%llu\n",
                static_cast<unsigned long long>(r.sim_stats.fallback_plain_tcp),
                static_cast<unsigned long long>(r.sim_stats.fallback_infinite_mapping));
  }
  if (r.sim_stats.middlebox_options_stripped > 0 ||
      r.sim_stats.middlebox_packets_mangled > 0) {
    std::printf("middlebox:        stripped=%llu mangled=%llu checksum_failures=%llu\n",
                static_cast<unsigned long long>(r.sim_stats.middlebox_options_stripped),
                static_cast<unsigned long long>(r.sim_stats.middlebox_packets_mangled),
                static_cast<unsigned long long>(r.sim_stats.checksum_failures));
  }
  std::printf("download time:    %.3f s\n", r.download_time_s);
  std::printf("cellular share:   %.1f%%\n", r.cellular_fraction() * 100);
  std::printf("wifi:             %llu bytes, loss %.2f%%\n",
              static_cast<unsigned long long>(r.wifi.bytes_received),
              r.wifi.loss_rate() * 100);
  std::printf("cellular:         %llu bytes, loss %.2f%%\n",
              static_cast<unsigned long long>(r.cellular.bytes_received),
              r.cellular.loss_rate() * 100);
  std::printf("radio energy:     wifi %.1f J, cellular %.1f J\n", r.wifi_energy_j,
              r.cellular_energy_j);
  if (!r.ofo_ms.empty()) {
    const auto s = analysis::summarize(r.ofo_ms);
    std::printf("reorder delay:    mean %.1f ms, max %.1f ms over %zu packets\n", s.mean,
                s.max, s.n);
  }
}

void print_sketch_text(const char* name, const analysis::QSketch& s) {
  if (s.count() == 0) {
    std::printf("%-18s -\n", name);
    return;
  }
  std::printf("%-18s n=%llu  p10=%.3f  p50=%.3f  p90=%.3f  p99=%.3f  max=%.3f\n", name,
              static_cast<unsigned long long>(s.count()), s.quantile(0.10), s.quantile(0.50),
              s.quantile(0.90), s.quantile(0.99), s.max());
}

void print_sketch_json(const char* name, const analysis::QSketch& s, bool trailing_comma) {
  std::printf("\"%s\":{\"n\":%llu,\"p10\":%.6f,\"p50\":%.6f,\"p90\":%.6f,\"p99\":%.6f,"
              "\"max\":%.6f}%s",
              name, static_cast<unsigned long long>(s.count()), s.quantile(0.10),
              s.quantile(0.50), s.quantile(0.90), s.quantile(0.99), s.max(),
              trailing_comma ? "," : "");
}

int run_campaign_cli(const tools::Flags& flags) {
  std::string error;
  const CampaignSpec spec = CampaignSpec::parse_file(flags.get("campaign"), &error);
  if (!error.empty()) {
    std::fprintf(stderr, "mpr_run: --campaign: %s\n", error.c_str());
    return 1;
  }

  CampaignOptions opt;
  opt.checkpoint_path = flags.get("checkpoint", "");
  opt.resume = flags.get_bool("resume");
  opt.jobs = static_cast<int>(flags.get_int("jobs", 0));
  opt.handle_signals = true;

  const std::optional<CampaignResult> res = run_campaign(spec, opt, &error);
  if (!res) {
    std::fprintf(stderr, "mpr_run: campaign: %s\n", error.c_str());
    return 1;
  }
  const CampaignAggregates& agg = res->agg;

  if (flags.get_bool("json")) {
    std::printf("{\"users\":%llu,\"users_done\":%llu,\"completed\":%llu,\"timeouts\":%llu,"
                "\"quarantined\":%llu,\"delivered_bytes\":%llu,"
                "\"interrupted\":%s,\"budget_exhausted\":%s,",
                static_cast<unsigned long long>(spec.users),
                static_cast<unsigned long long>(res->users_done),
                static_cast<unsigned long long>(agg.completed),
                static_cast<unsigned long long>(agg.timeouts),
                static_cast<unsigned long long>(agg.quarantined()),
                static_cast<unsigned long long>(agg.delivered_bytes),
                res->interrupted ? "true" : "false", res->budget_exhausted ? "true" : "false");
    print_sketch_json("download_time_s", agg.download_time_s, true);
    print_sketch_json("cellular_fraction", agg.cellular_fraction, true);
    print_sketch_json("ofo_delay_ms", agg.ofo_delay_ms, false);
    std::printf("}\n");
  } else {
    std::printf("campaign:         %llu/%llu users done (%llu completed, %llu timeouts, "
                "%llu quarantined)\n",
                static_cast<unsigned long long>(res->users_done),
                static_cast<unsigned long long>(spec.users),
                static_cast<unsigned long long>(agg.completed),
                static_cast<unsigned long long>(agg.timeouts),
                static_cast<unsigned long long>(agg.quarantined()));
    print_sketch_text("download time [s]:", agg.download_time_s);
    print_sketch_text("cellular share:", agg.cellular_fraction);
    print_sketch_text("ofo delay [ms]:", agg.ofo_delay_ms);
    if (agg.quarantined() > 0) {
      std::printf("quarantine:       connection=%llu watchdog=%llu audit=%llu exception=%llu\n",
                  static_cast<unsigned long long>(agg.quarantined_connection),
                  static_cast<unsigned long long>(agg.quarantined_watchdog),
                  static_cast<unsigned long long>(agg.quarantined_audit),
                  static_cast<unsigned long long>(agg.quarantined_exception));
      const std::size_t show = std::min<std::size_t>(agg.quarantine.size(), 10);
      for (std::size_t i = 0; i < show; ++i) {
        const QuarantineRecord& q = agg.quarantine[i];
        std::printf("  user %llu seed %llu [%s]: %s\n",
                    static_cast<unsigned long long>(q.user),
                    static_cast<unsigned long long>(q.seed), q.label.c_str(),
                    q.reason.c_str());
      }
      if (agg.quarantine.size() > show) {
        std::printf("  ... %zu more retained in the checkpoint\n", agg.quarantine.size() - show);
      }
    }
  }

  if (res->budget_exhausted) {
    std::fprintf(stderr, "mpr_run: campaign: failure budget exhausted (%llu quarantined)\n",
                 static_cast<unsigned long long>(agg.quarantined()));
    return 2;
  }
  if (res->interrupted) {
    std::fprintf(stderr, "mpr_run: campaign: interrupted by signal %d, checkpoint written\n",
                 res->signal);
    return 128 + res->signal;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Flags flags{argc, argv};
  if (flags.has("help")) {
    std::printf("see the header of tools/mpr_run.cpp for flags\n");
    return 0;
  }
  if (flags.has("campaign")) return run_campaign_cli(flags);

  TestbedConfig tb;
  tb.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  tb.wifi = flags.get_bool("hotspot") ? netem::wifi_hotspot() : netem::wifi_home();
  tb.cellular = carrier_profile(parse_carrier(flags.get("carrier", "att")));
  tb.cellular.codel_downlink = flags.get_bool("codel");

  RunConfig rc;
  rc.mode = parse_mode(flags.get("mode", "mp2"));
  rc.cc = parse_cc(flags.get("cc", "coupled"));
  if (const std::string sched = flags.get("sched", "minrtt"); !parse_sched(sched, rc)) {
    std::fprintf(stderr,
                 "mpr_run: --sched %s: expected minrtt | rr | roundrobin | "
                 "weighted[:w1,w2,...] | redundant\n",
                 sched.c_str());
    return 1;
  }
  rc.file_bytes = flags.get_size("size", 4 << 20);
  rc.simultaneous_syns = flags.get_bool("simsyn");
  rc.cellular_backup = flags.get_bool("backup");

  rc.dss_checksum = flags.get_bool("checksum");
  rc.checksum_teardown = flags.get_bool("teardown");
  rc.tcp_fallback = !flags.get_bool("no-fallback");
  if (const long long cap = flags.get_int("max-events", 0); cap > 0) {
    rc.max_events = static_cast<std::uint64_t>(cap);
  }
  if (const std::string t = flags.get("max-sim-time", ""); !t.empty()) {
    rc.max_sim_time = sim::Duration::from_seconds(std::stod(t));
  }

  if (const std::string scenario = flags.get("scenario", ""); !scenario.empty()) {
    std::string error;
    rc.faults = netem::FaultSchedule::parse_file(scenario, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "mpr_run: --scenario %s: %s\n", scenario.c_str(), error.c_str());
      return 1;
    }
    // The testbed binds exactly two links; a typo'd link name would make the
    // schedule a silent no-op, so fail loudly instead.
    const std::vector<std::string> unbound = rc.faults.unknown_links({"wifi", "cell"});
    if (!unbound.empty()) {
      for (const std::string& l : unbound) {
        std::fprintf(stderr, "mpr_run: --scenario %s: unknown link '%s' (bound: wifi, cell)\n",
                     scenario.c_str(), l.c_str());
      }
      return 1;
    }
  }

  const int reps = static_cast<int>(flags.get_int("reps", 1));
  const bool json = flags.get_bool("json");

  // Reps are independently-seeded simulations: run them across the worker
  // pool, then print in rep order so output is identical at any job count.
  std::vector<RunResult> results(static_cast<std::size_t>(reps));
  const unsigned jobs = sim::effective_jobs(static_cast<int>(flags.get_int("jobs", 0)));
  sim::parallel_for_index(results.size(), jobs, [&](std::size_t i) {
    TestbedConfig tbi = tb;
    tbi.seed = tb.seed + static_cast<std::uint64_t>(i);
    results[i] = run_download(tbi, rc);
  });

  for (int i = 0; i < reps; ++i) {
    const RunResult& r = results[static_cast<std::size_t>(i)];
    if (json) {
      print_json(r);
    } else {
      if (reps > 1) std::printf("--- rep %d (seed %llu) ---\n", i,
                                static_cast<unsigned long long>(tb.seed + static_cast<std::uint64_t>(i)));
      print_text(r);
    }
  }
  return 0;
}
