#!/usr/bin/env python3
"""Unit tests for tools/mpr_analyze.py and the mpranalyze package.

Three kinds of coverage:

  * fixture source trees in a tempdir for the layering pass (seeded
    include cycle, layer inversion, orphan header, unresolved include),
  * hand-built ObjectModel instances for the hotpath and reach passes
    (fast, no compiler), and
  * one *compiled* fixture: a real .cpp built at -O2 whose hot function
    contains a seeded `new` and whose entry point reaches `time()`, run
    through the full objdump/c++filt pipeline and the CLI, proving the
    audit catches the violations in emitted code, not just in a mock.

Run directly (`python3 tools/test_mpr_analyze.py`) or via
`ctest -L lint`.
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from mpranalyze import hotpath, layering, reach  # noqa: E402
from mpranalyze.config import ConfigError, load_config  # noqa: E402
from mpranalyze.findings import (  # noqa: E402
    Finding,
    Report,
    SuppressionError,
    load_suppressions,
)
from mpranalyze.objects import ObjectModel, build_model  # noqa: E402

TOOLS_DIR = Path(__file__).resolve().parent
ANALYZE = TOOLS_DIR / "mpr_analyze.py"


def write_tree(root: Path, files: dict) -> None:
    for rel, text in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text, encoding="utf-8")


def make_config(tmp: Path, text: str):
    conf = tmp / "analyze.conf"
    conf.write_text(text, encoding="utf-8")
    return load_config(conf)


def rules(findings) -> list:
    return sorted(f.rule for f in findings)


def by_rule(findings, rule: str) -> list:
    return [f for f in findings if f.rule == rule]


LAYERS_AB = """
[layers]
a:
b: a
"""


class ConfigTest(unittest.TestCase):
    def setUp(self):
        self.tmp = Path(tempfile.mkdtemp(prefix="mpran_cfg_"))
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)

    def test_full_config_parses(self):
        cfg = make_config(
            self.tmp,
            """
            # comment
            [layers]
            a:
            b: a

            [hotpath]
            */x.dir/*.o :: ^ns::Engine::step\\(

            [entrypoints]
            ^ns::run\\(

            [banned-time]
            time
            [banned-alloc]
            operator new.*
            """,
        )
        self.assertEqual(cfg.layers, {"a": set(), "b": {"a"}})
        self.assertEqual(len(cfg.hotpath), 1)
        self.assertEqual(cfg.hotpath[0].object_glob, "*/x.dir/*.o")
        self.assertTrue(cfg.hotpath[0].symbol_re.search("ns::Engine::step()"))
        self.assertEqual(len(cfg.entrypoints), 1)
        self.assertTrue(cfg.banned["banned-time"][0].fullmatch("time"))
        self.assertTrue(
            cfg.banned["banned-alloc"][0].fullmatch("operator new(unsigned long)")
        )

    def test_cyclic_layer_graph_rejected(self):
        with self.assertRaisesRegex(ConfigError, "cyclic"):
            make_config(self.tmp, "[layers]\na: b\nb: a\n")

    def test_undeclared_dependency_rejected(self):
        with self.assertRaisesRegex(ConfigError, "undeclared dependency"):
            make_config(self.tmp, "[layers]\na: ghost\n")

    def test_duplicate_module_rejected(self):
        with self.assertRaisesRegex(ConfigError, "declared twice"):
            make_config(self.tmp, "[layers]\na:\na:\n")

    def test_bad_regex_rejected(self):
        with self.assertRaisesRegex(ConfigError, "bad regex"):
            make_config(self.tmp, "[entrypoints]\n(unclosed\n")

    def test_unknown_section_rejected(self):
        with self.assertRaisesRegex(ConfigError, "unknown section"):
            make_config(self.tmp, "[wat]\n")

    def test_entry_before_section_rejected(self):
        with self.assertRaisesRegex(ConfigError, "before any"):
            make_config(self.tmp, "a: b\n")

    def test_hotpath_entry_needs_both_halves(self):
        with self.assertRaisesRegex(ConfigError, "object-glob :: symbol-regex"):
            make_config(self.tmp, "[hotpath]\njust-a-glob\n")


class SuppressionTest(unittest.TestCase):
    def setUp(self):
        self.tmp = Path(tempfile.mkdtemp(prefix="mpran_sup_"))
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)

    def load(self, text: str):
        p = self.tmp / "sup.txt"
        p.write_text(text, encoding="utf-8")
        return p, load_suppressions(p)

    def test_parse_skips_comments_and_blanks(self):
        _, sups = self.load(
            "# header\n\nlayering.cycle | src/a/* | legacy tangle, issue #42\n"
        )
        self.assertEqual(len(sups), 1)
        self.assertEqual(sups[0].rule, "layering.cycle")
        self.assertEqual(sups[0].location_glob, "src/a/*")

    def test_missing_justification_rejected(self):
        with self.assertRaises(SuppressionError):
            self.load("layering.cycle | src/a/*\n")

    def test_empty_field_rejected(self):
        with self.assertRaises(SuppressionError):
            self.load("layering.cycle | src/a/* |  \n")

    def test_matching_finding_is_suppressed(self):
        path, sups = self.load("hotpath.alloc | */link.cpp.o:* | measured, cold\n")
        rep = Report(suppressions=sups)
        rep.add(Finding("hotpath.alloc", "x/link.cpp.o:mpr::net::Link::send()", "m"))
        rep.passes_run.append("hotpath")
        rep.finish(path)
        self.assertEqual(rep.findings, [])
        self.assertEqual(len(rep.suppressed), 1)

    def test_unused_suppression_flagged_when_pass_ran(self):
        path, sups = self.load("hotpath.alloc | */gone.cpp.o:* | stale\n")
        rep = Report(suppressions=sups)
        rep.passes_run.append("hotpath")
        rep.finish(path)
        self.assertEqual(rules(rep.findings), ["meta.unused-suppression"])

    def test_unused_suppression_ignored_when_pass_skipped(self):
        path, sups = self.load("hotpath.alloc | */gone.cpp.o:* | stale\n")
        rep = Report(suppressions=sups)
        rep.passes_run.append("layering")  # hotpath did not run
        rep.finish(path)
        self.assertEqual(rep.findings, [])


class LayeringTest(unittest.TestCase):
    """Fixture source trees in a tempdir, pure pass-1 checks."""

    def setUp(self):
        self.tmp = Path(tempfile.mkdtemp(prefix="mpran_lay_"))
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)
        self.cfg = make_config(self.tmp, LAYERS_AB)

    def run_pass(self):
        return layering.run_pass(self.tmp, self.cfg)

    def test_clean_tree(self):
        write_tree(
            self.tmp,
            {
                "src/a/x.h": "#pragma once\n",
                "src/a/x.cpp": '#include "a/x.h"\n',
                "src/b/y.cpp": '#include "a/x.h"\n',
            },
        )
        self.assertEqual(self.run_pass(), [])

    def test_seeded_include_cycle(self):
        write_tree(
            self.tmp,
            {
                "src/a/p.h": '#include "a/q.h"\n',
                "src/a/q.h": '#include "a/p.h"\n',
                "src/a/use.cpp": '#include "a/p.h"\n',
            },
        )
        found = by_rule(self.run_pass(), "layering.cycle")
        self.assertEqual(len(found), 1)
        # Path prints the full cycle, closed back to its first member.
        self.assertEqual(
            found[0].path, ["src/a/p.h", "src/a/q.h", "src/a/p.h"]
        )

    def test_self_include_is_a_cycle(self):
        write_tree(
            self.tmp,
            {
                "src/a/p.h": '#include "a/p.h"\n',
                "src/a/use.cpp": '#include "a/p.h"\n',
            },
        )
        self.assertEqual(rules(self.run_pass()), ["layering.cycle"])

    def test_layer_inversion(self):
        # a may not include b (only b: a is declared).
        write_tree(
            self.tmp,
            {
                "src/a/x.cpp": '#include "b/y.h"\n',
                "src/b/y.h": "#pragma once\n",
                "src/b/use.cpp": '#include "b/y.h"\n',
            },
        )
        found = by_rule(self.run_pass(), "layering.inversion")
        self.assertEqual(len(found), 1)
        self.assertEqual(found[0].location, "src/a/x.cpp:1")
        self.assertIn("may not include 'b'", found[0].message)

    def test_orphan_header(self):
        write_tree(
            self.tmp,
            {
                "src/a/live.h": "#pragma once\n",
                "src/a/dead.h": "#pragma once\n",
                "src/a/use.cpp": '#include "a/live.h"\n',
            },
        )
        found = by_rule(self.run_pass(), "layering.orphan")
        self.assertEqual([f.location for f in found], ["src/a/dead.h"])

    def test_header_reached_only_from_tests_is_not_orphan(self):
        write_tree(
            self.tmp,
            {
                "src/a/x.h": "#pragma once\n",
                "tests/t.cpp": '#include "a/x.h"\n',
            },
        )
        self.assertEqual(by_rule(self.run_pass(), "layering.orphan"), [])

    def test_unresolved_include(self):
        write_tree(self.tmp, {"src/a/x.cpp": '#include "a/missing.h"\n'})
        found = by_rule(self.run_pass(), "layering.unresolved")
        self.assertEqual(len(found), 1)
        self.assertEqual(found[0].location, "src/a/x.cpp:1")

    def test_includer_relative_resolution(self):
        # Quoted includes try the includer's own directory first.
        write_tree(
            self.tmp,
            {
                "src/a/x.h": "#pragma once\n",
                "src/a/x.cpp": '#include "x.h"\n',
            },
        )
        self.assertEqual(self.run_pass(), [])

    def test_commented_out_include_is_not_an_edge(self):
        write_tree(
            self.tmp,
            {
                "src/a/x.cpp": '// #include "a/gone.h"\n'
                '/* #include "a/gone2.h" */\n'
                "/*\n"
                '#include "a/gone3.h"\n'
                "*/\n",
            },
        )
        self.assertEqual(by_rule(self.run_pass(), "layering.unresolved"), [])

    def test_unknown_module(self):
        write_tree(
            self.tmp,
            {
                "src/zzz/f.cpp": "\n",
                "src/loose.cpp": "\n",
            },
        )
        found = by_rule(self.run_pass(), "layering.unknown-module")
        self.assertEqual(
            sorted(f.location for f in found), ["src/loose.cpp", "src/zzz/f.cpp"]
        )


def add_fn(model, symbol, pretty, objects=(), calls=()):
    fi = model.function(symbol)
    fi.objects.update(objects)
    fi.calls.update(calls)
    model.demangled[symbol] = pretty


BANNED_SECTIONS = """
[banned-time]
time
clock_gettime
std::chrono::(system|steady|high_resolution)_clock::now\\(\\)
[banned-rand]
rand
std::random_device::.*
[banned-alloc]
operator new.*
operator delete.*
malloc
free
[banned-throw]
__cxa_throw
std::__throw_(?!bad_function_call).*
"""

OBJ = "src/x/CMakeFiles/x.dir/engine.cpp.o"


class HotpathTest(unittest.TestCase):
    """Hand-built ObjectModel instances; no compiler involved."""

    def setUp(self):
        self.tmp = Path(tempfile.mkdtemp(prefix="mpran_hot_"))
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)

    def cfg(self, manifest: str):
        return make_config(
            self.tmp, f"[hotpath]\n{manifest}\n{BANNED_SECTIONS}"
        )

    def test_seeded_operator_new_is_flagged(self):
        model = ObjectModel()
        add_fn(model, "_ZN2ns6Engine4stepEv", "ns::Engine::step()", [OBJ], ["_Znwm"])
        model.demangled["_Znwm"] = "operator new(unsigned long)"
        cfg = self.cfg("*/x.dir/engine.cpp.o :: ^ns::Engine::step\\(")
        found = hotpath.run_pass(cfg, model)
        self.assertEqual(rules(found), ["hotpath.alloc"])
        self.assertIn("operator new", found[0].message)
        self.assertEqual(found[0].location, f"{OBJ}:ns::Engine::step()")

    def test_throw_flagged_but_bad_function_call_helper_exempt(self):
        model = ObjectModel()
        add_fn(
            model,
            "_ZN2ns6Engine4stepEv",
            "ns::Engine::step()",
            [OBJ],
            ["__cxa_throw", "_ZSt25__throw_bad_function_callv"],
        )
        model.demangled["_ZSt25__throw_bad_function_callv"] = (
            "std::__throw_bad_function_call()"
        )
        cfg = self.cfg("*/x.dir/engine.cpp.o :: ^ns::Engine::step\\(")
        found = hotpath.run_pass(cfg, model)
        # __cxa_throw is a finding; the std::function helper is not.
        self.assertEqual(rules(found), ["hotpath.throw"])
        self.assertIn("__cxa_throw", found[0].message)

    def test_cold_fragment_is_exempt(self):
        model = ObjectModel()
        add_fn(model, "_ZN2ns6Engine4stepEv", "ns::Engine::step()", [OBJ], [])
        add_fn(
            model,
            "_ZN2ns6Engine4stepEv.cold",
            "ns::Engine::step() [clone .cold]",
            [OBJ],
            ["_Znwm"],
        )
        cfg = self.cfg("*/x.dir/engine.cpp.o :: ^ns::Engine::step\\(")
        self.assertEqual(hotpath.run_pass(cfg, model), [])

    def test_anchored_regex_skips_cold_allocator_template(self):
        # The manifest anchors with ^ so FlatVec<ns::Engine::Rec>::grow --
        # the declared cold allocator, which legitimately calls operator
        # new -- does not match a search for ns::Engine::*.
        model = ObjectModel()
        add_fn(model, "_ZN2ns6Engine4stepEv", "ns::Engine::step()", [OBJ], [])
        add_fn(
            model,
            "_ZN7FlatVecIN2ns6Engine3RecEE4growEm",
            "FlatVec<ns::Engine::Rec>::grow(unsigned long)",
            [OBJ],
            ["_Znwm"],
        )
        cfg = self.cfg("*/x.dir/engine.cpp.o :: ^ns::Engine::")
        self.assertEqual(hotpath.run_pass(cfg, model), [])

    def test_manifest_entry_matching_nothing_reports_missing(self):
        model = ObjectModel()
        add_fn(model, "_ZN2ns6Engine4stepEv", "ns::Engine::step()", [OBJ], [])
        cfg = self.cfg("*/x.dir/engine.cpp.o :: ^ns::Engine::renamed\\(")
        found = hotpath.run_pass(cfg, model)
        self.assertEqual(rules(found), ["hotpath.missing"])

    def test_object_glob_scopes_the_match(self):
        # Same symbol in a different object is out of scope for the entry.
        model = ObjectModel()
        add_fn(
            model,
            "_ZN2ns6Engine4stepEv",
            "ns::Engine::step()",
            ["src/y/CMakeFiles/y.dir/other.cpp.o"],
            ["_Znwm"],
        )
        cfg = self.cfg("*/x.dir/*.o :: ^ns::Engine::step\\(")
        self.assertEqual(rules(hotpath.run_pass(cfg, model)), ["hotpath.missing"])


class ReachTest(unittest.TestCase):
    def setUp(self):
        self.tmp = Path(tempfile.mkdtemp(prefix="mpran_reach_"))
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)

    def cfg(self, entrypoints: str):
        return make_config(
            self.tmp, f"[entrypoints]\n{entrypoints}\n{BANNED_SECTIONS}"
        )

    def test_seeded_wallclock_path_with_chain(self):
        model = ObjectModel()
        add_fn(model, "_Zrun", "ns::run()", [OBJ], ["_Zhelp"])
        add_fn(model, "_Zhelp", "ns::helper()", [OBJ], ["clock_gettime"])
        cfg = self.cfg("^ns::run\\(")
        found = reach.run_pass(cfg, model)
        self.assertEqual(rules(found), ["reach.wallclock"])
        self.assertEqual(
            found[0].path, ["ns::run()", "ns::helper()", "clock_gettime"]
        )

    def test_rand_source_flagged(self):
        model = ObjectModel()
        add_fn(model, "_Zrun", "ns::run()", [OBJ], ["rand"])
        found = reach.run_pass(self.cfg("^ns::run\\("), model)
        self.assertEqual(rules(found), ["reach.rand"])

    def test_one_finding_per_banned_target(self):
        # Two routes to the same banned symbol collapse to one finding.
        model = ObjectModel()
        add_fn(model, "_Zrun", "ns::run()", [OBJ], ["_Za", "_Zb"])
        add_fn(model, "_Za", "ns::a()", [OBJ], ["time"])
        add_fn(model, "_Zb", "ns::b()", [OBJ], ["time"])
        found = reach.run_pass(self.cfg("^ns::run\\("), model)
        self.assertEqual(rules(found), ["reach.wallclock"])

    def test_cold_fragment_is_included(self):
        # Unlike the hotpath pass, .cold fragments are audited: a
        # timestamp on an error path still diverges runs.
        model = ObjectModel()
        add_fn(model, "_Zrun", "ns::run()", [OBJ], ["_Zrun.cold"])
        add_fn(model, "_Zrun.cold", "ns::run() [clone .cold]", [OBJ], ["time"])
        found = reach.run_pass(self.cfg("^ns::run\\("), model)
        self.assertEqual(rules(found), ["reach.wallclock"])

    def test_unreached_direct_caller_reported(self):
        model = ObjectModel()
        add_fn(model, "_Zrun", "ns::run()", [OBJ], [])
        add_fn(model, "_Zlost", "ns::lost()", [OBJ], ["time"])
        found = reach.run_pass(self.cfg("^ns::run\\("), model)
        self.assertEqual(rules(found), ["reach.direct"])
        self.assertIn("ns::lost()", found[0].location)

    def test_entrypoint_matching_nothing_reports_no_entry(self):
        model = ObjectModel()
        add_fn(model, "_Zrun", "ns::run()", [OBJ], [])
        found = reach.run_pass(self.cfg("^ns::gone\\("), model)
        self.assertEqual(rules(found), ["reach.no-entry"])


FIXTURE_CPP = """\
#include <ctime>

namespace fix {

struct Engine {
  int* buf = nullptr;
  void hot_step();
};

// Seeded violation: an allocation in a manifest-declared hot function.
void Engine::hot_step() { buf = new int[16]; }

__attribute__((noinline)) long helper() { return ::time(nullptr); }

// Seeded violation: the entry point reaches a wall-clock read.
long run_sim() { return helper(); }

}  // namespace fix
"""

FIXTURE_CONF = """\
[layers]
fix:
[hotpath]
*/fix.dir/fix.cpp.o :: ^fix::Engine::hot_step\\(
[entrypoints]
^fix::run_sim\\(
""" + BANNED_SECTIONS


class CompiledFixtureTest(unittest.TestCase):
    """End-to-end: compile a fixture at -O2 and run the real objdump /
    c++filt pipeline over it. Demonstrates the hotpath pass catching a
    seeded `operator new` and the reach pass catching a seeded
    wall-clock path in *emitted* code."""

    @classmethod
    def setUpClass(cls):
        cls.cxx = shutil.which("c++") or shutil.which("g++")
        if cls.cxx is None or shutil.which("objdump") is None:
            raise unittest.SkipTest("c++/objdump not available")
        tmp = Path(tempfile.mkdtemp(prefix="mpran_e2e_"))
        cls.addClassCleanup(shutil.rmtree, tmp, ignore_errors=True)
        cls.root = tmp / "root"
        cls.build = tmp / "build"
        src = cls.root / "src" / "fix" / "fix.cpp"
        write_tree(cls.root, {"src/fix/fix.cpp": FIXTURE_CPP})
        obj = cls.build / "src" / "fix" / "CMakeFiles" / "fix.dir" / "fix.cpp.o"
        obj.parent.mkdir(parents=True)
        cmd = [cls.cxx, "-O2", "-std=c++20", "-c", str(src), "-o", str(obj)]
        subprocess.run(cmd, check=True, capture_output=True)
        (cls.build / "compile_commands.json").write_text(
            json.dumps(
                [
                    {
                        "directory": str(cls.build),
                        "command": " ".join(cmd),
                        "file": str(src),
                    }
                ]
            ),
            encoding="utf-8",
        )
        cls.conf = tmp / "analyze.conf"
        cls.conf.write_text(FIXTURE_CONF, encoding="utf-8")
        cls.cfg = load_config(cls.conf)
        cls.model = build_model(cls.build, cls.root)

    def test_hotpath_catches_seeded_operator_new(self):
        found = hotpath.run_pass(self.cfg, self.model)
        allocs = by_rule(found, "hotpath.alloc")
        self.assertTrue(allocs, f"expected hotpath.alloc, got {rules(found)}")
        self.assertIn("fix::Engine::hot_step()", allocs[0].location)
        self.assertIn("operator new", allocs[0].message)
        # The manifest matched, so no missing-entry noise.
        self.assertEqual(by_rule(found, "hotpath.missing"), [])

    def test_reach_catches_seeded_wallclock_path(self):
        found = reach.run_pass(self.cfg, self.model)
        wall = by_rule(found, "reach.wallclock")
        self.assertTrue(wall, f"expected reach.wallclock, got {rules(found)}")
        path = wall[0].path
        self.assertEqual(path[0], "fix::run_sim()")
        self.assertEqual(path[-1], "time")
        self.assertIn("fix::helper()", path)
        self.assertEqual(by_rule(found, "reach.no-entry"), [])

    def test_cli_end_to_end_reports_both_and_writes_json(self):
        out_json = self.build / "findings.json"
        proc = subprocess.run(
            [
                sys.executable,
                str(ANALYZE),
                "--root",
                str(self.root),
                "--build",
                str(self.build),
                "--config",
                str(self.conf),
                "--json",
                str(out_json),
            ],
            capture_output=True,
            text=True,
        )
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        report = json.loads(out_json.read_text(encoding="utf-8"))
        self.assertFalse(report["clean"])
        self.assertEqual(report["passes"], ["layering", "hotpath", "reach"])
        got = {f["rule"] for f in report["findings"]}
        self.assertIn("hotpath.alloc", got)
        self.assertIn("reach.wallclock", got)


class CliTest(unittest.TestCase):
    """CLI exit-code contract on layering-only fixtures (no build)."""

    def setUp(self):
        self.tmp = Path(tempfile.mkdtemp(prefix="mpran_cli_"))
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)
        self.conf = self.tmp / "analyze.conf"
        self.conf.write_text(LAYERS_AB, encoding="utf-8")

    def run_cli(self, *extra, sup_text=None):
        argv = [
            sys.executable,
            str(ANALYZE),
            "--root",
            str(self.tmp),
            "--config",
            str(self.conf),
        ]
        if sup_text is not None:
            sup = self.tmp / "sup.txt"
            sup.write_text(sup_text, encoding="utf-8")
            argv += ["--suppressions", str(sup)]
        argv += list(extra)
        return subprocess.run(argv, capture_output=True, text=True)

    def test_clean_tree_exits_zero(self):
        write_tree(
            self.tmp,
            {"src/a/x.h": "#pragma once\n", "src/a/x.cpp": '#include "a/x.h"\n'},
        )
        proc = self.run_cli("layering")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("mpr_analyze: clean (layering)", proc.stdout)

    def test_seeded_cycle_exits_one_with_path(self):
        write_tree(
            self.tmp,
            {
                "src/a/p.h": '#include "a/q.h"\n',
                "src/a/q.h": '#include "a/p.h"\n',
                "src/a/use.cpp": '#include "a/p.h"\n',
            },
        )
        proc = self.run_cli("layering")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[layering.cycle]", proc.stdout)
        self.assertIn("src/a/q.h", proc.stdout)

    def test_suppressed_cycle_exits_zero(self):
        write_tree(
            self.tmp,
            {
                "src/a/p.h": '#include "a/q.h"\n',
                "src/a/q.h": '#include "a/p.h"\n',
                "src/a/use.cpp": '#include "a/p.h"\n',
            },
        )
        proc = self.run_cli(
            "layering",
            sup_text="layering.cycle | src/a/p.h | fixture tangle, tracked\n",
        )
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("suppressed", proc.stdout)

    def test_unused_suppression_exits_one(self):
        write_tree(
            self.tmp,
            {"src/a/x.h": "#pragma once\n", "src/a/x.cpp": '#include "a/x.h"\n'},
        )
        proc = self.run_cli(
            "layering", sup_text="layering.cycle | src/never/* | stale\n"
        )
        self.assertEqual(proc.returncode, 1)
        self.assertIn("meta.unused-suppression", proc.stdout)

    def test_unknown_pass_exits_two(self):
        proc = self.run_cli("warp")
        self.assertEqual(proc.returncode, 2)
        self.assertIn("unknown pass", proc.stderr)

    def test_missing_build_dir_exits_two(self):
        write_tree(self.tmp, {"src/a/x.cpp": "\n"})
        proc = self.run_cli("hotpath", "--build", str(self.tmp / "nobuild"))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("compile_commands.json", proc.stderr)


class RepoConfigTest(unittest.TestCase):
    """The checked-in config must stay loadable and structurally sane."""

    def test_repo_config_loads(self):
        cfg = load_config(TOOLS_DIR / "mpr_analyze.conf")
        self.assertIn("sim", cfg.layers)
        self.assertIn("experiment", cfg.layers)
        self.assertTrue(cfg.hotpath)
        self.assertTrue(cfg.entrypoints)
        for section in ("banned-time", "banned-rand", "banned-alloc", "banned-throw"):
            self.assertTrue(cfg.banned[section], f"[{section}] is empty")
        # Every hotpath regex must be ^-anchored (see the conf header for
        # why: unanchored owner names match their cold allocator templates).
        for entry in cfg.hotpath:
            self.assertTrue(
                entry.symbol_re.pattern.startswith("^"),
                f"manifest line {entry.line} not ^-anchored",
            )

    def test_repo_suppression_file_parses(self):
        load_suppressions(TOOLS_DIR / "mpr_analyze_suppressions.txt")


if __name__ == "__main__":
    unittest.main(verbosity=2)
