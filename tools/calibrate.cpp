#include <cstdio>
#include "experiment/carriers.h"
#include "experiment/run.h"
#include "experiment/series.h"
#include "analysis/stats.h"
using namespace mpr;
using namespace mpr::experiment;

int main() {
  const std::uint64_t sizes[] = {64ull<<10, 512ull<<10, 2ull<<20, 16ull<<20};
  // Single path characterization per carrier + wifi
  for (int mode = 0; mode < 2; ++mode) {
    for (const char* which : {"wifi", "att", "vzw", "sprint"}) {
      if (mode == 1 && std::string(which) == "wifi") continue;
      for (auto size : sizes) {
        TestbedConfig tb; tb.seed = 100;
        RunConfig rc; rc.file_bytes = size;
        std::string label = which;
        if (label == "wifi") { rc.mode = PathMode::kSingleWifi; }
        else {
          rc.mode = mode == 0 ? PathMode::kSingleCellular : PathMode::kMptcp2;
          tb.cellular = carrier_profile(label=="att"?Carrier::kAtt:label=="vzw"?Carrier::kVerizon:Carrier::kSprint);
        }
        auto rs = run_series(tb, rc, 8, 42);
        auto dt = download_time_summary(rs);
        bool cell = rc.mode != PathMode::kSingleWifi;
        auto loss = analysis::summarize(loss_rates_percent(rs, cell));
        auto rtt = analysis::summarize(per_run_mean_rtt_ms(rs, cell));
        auto wloss = analysis::summarize(loss_rates_percent(rs, false));
        auto wrtt = analysis::summarize(per_run_mean_rtt_ms(rs, false));
        std::printf("%-6s %-8s %6lluKB  dt=%7.3fs med=%7.3f  loss%%=%5.2f rtt=%7.1fms  [wifi loss%%=%5.2f rtt=%6.1fms] cellfrac=%.2f n=%zu\n",
          mode==0?"SP":"MP2", which, (unsigned long long)(size>>10),
          dt.mean, dt.median, loss.mean, rtt.mean, wloss.mean, wrtt.mean,
          mean_cellular_fraction(rs), dt.n);
      }
    }
  }
  return 0;
}
