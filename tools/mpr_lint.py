#!/usr/bin/env python3
"""mpr_lint -- determinism and hot-path lint for the simulator tree.

The simulator's contract is bit-identical output at any MPR_JOBS value
(ROADMAP north star), and an allocation-free packet hot path (PR 3). Both
properties die by a thousand innocent-looking cuts, so this lint bans the
cuts by rule:

  wallclock       wall-clock time sources (std::chrono system/steady/
                  high_resolution clocks, time(), gettimeofday,
                  clock_gettime): simulated time comes from the EventQueue,
                  nothing else.
  rand            non-seeded randomness (rand(), srand(), random(),
                  std::random_device): every random draw must come from a
                  seeded sim::Rng so runs replay.
  unordered-iter  iteration (range-for, .begin() loops, std::erase_if) over
                  unordered_map/unordered_set variables: iteration order is
                  hash-layout-defined and must never feed event or output
                  ordering. Sort a snapshot, or use std::map/std::set.
  raw-new         raw new/delete/malloc/free in the packet hot path
                  (src/net, src/tcp, src/core): packets come from the
                  per-simulation PacketPool; per-packet heap traffic is a
                  perf regression. (Containers and make_unique are fine --
                  only raw allocation expressions are flagged.)
  ptr-key         pointer-keyed ORDERED containers (std::map<T*, ...>,
                  std::set<T*>): ordering by address varies run to run.
                  Pointer-keyed unordered containers used for lookup only
                  are fine.
  ordered-container
                  std::map/std::set (and multi variants) in hot-path files
                  (src/net, src/tcp, src/core, src/sim): a red-black node
                  per element is the allocation+pointer-chase cost PR 6
                  removed from the scheduler and the TCP endpoints. Use a
                  flat sorted vector / ring (tcp/seg_ring.h) or justify the
                  tree with `mpr-lint: allow(ordered-container)`.
  hot-struct-optional
                  std::optional data members in the per-packet hot structs
                  (src/net/packet.h, src/tcp/seg_ring.h): PR 8 replaced the
                  seven optional option members of TcpSegment with a presence
                  bitmask + hot/cold layout precisely because interleaved
                  optionals spread the hot fields over every cache line of
                  the struct. Use a presence bit + plain member (see
                  TcpSegment::OptBit) or justify the optional with
                  `mpr-lint: allow(hot-struct-optional)`. Return types and
                  locals are fine -- only member declarations are flagged.

Escape hatch: a line carrying (or immediately preceded by) the comment

    // mpr-lint: allow(<rule>[, <rule>...])

suppresses the named rule(s) on that line. For a statement spanning
multiple lines, the allow() may also trail the statement's last physical
line (the one ending in `;`/`{`/`}`).

Usage: mpr_lint.py [--root DIR] [paths...]    (default path: src)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

# Directories (relative path fragments) where the raw-new rule applies: the
# packet hot path. src/sim is exempt (the service registry and thread pool
# own memory by design), as are tests/tools/bench.
RAW_NEW_DIRS = ("net/", "tcp/", "core/")

# Directories where node-based ordered containers are banned (the scheduler
# and per-packet structures): everything the per-event cost flows through.
ORDERED_CONTAINER_DIRS = ("net/", "tcp/", "core/", "sim/")

ALLOW_RE = re.compile(r"mpr-lint:\s*allow\(([^)]*)\)")

# A line whose code portion ends the enclosing statement (for the forward
# allow() scan over multi-line statements).
STATEMENT_END_RE = re.compile(r"[;{}]")

WALLCLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)

RAND_RE = re.compile(
    r"(?<![\w.:])(?:s?rand|random)\s*\("
    r"|std::random_device"
    r"|(?<![\w:])random_device\b"
)

# Raw allocation expressions. `new` must be followed by a type-ish token
# (excludes `= delete`, placement-new is still caught deliberately);
# member/namespace-qualified f.malloc(...) or my::free(...) are not flagged.
NEW_RE = re.compile(r"(?<![\w:])new\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"(?<![\w:])delete(?:\s*\[\s*\])?\s+[\w(*]|(?<![\w:])delete\s*\[\s*\]")
MALLOC_FREE_RE = re.compile(r"(?<![\w.:>])(?:malloc|calloc|realloc|free)\s*\(")
EQ_DELETE_RE = re.compile(r"=\s*delete\b")

PTR_KEY_RE = re.compile(r"std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")

# Any std::map/std::set instantiation (never matches the unordered_ variants:
# the regex requires `map`/`set` directly after the `std::` qualifier).
ORDERED_CONTAINER_RE = re.compile(r"std::(?:multi)?(?:map|set)\s*<")

# Files whose structs ride the per-packet hot path: no std::optional members.
HOT_STRUCT_FILES = ("net/packet.h", "tcp/seg_ring.h")

# A std::optional *member declaration*: `std::optional<T> name;` possibly with
# a brace initializer. Function declarations/definitions returning an optional
# contain a '(' after the name and do not match.
HOT_STRUCT_OPTIONAL_RE = re.compile(
    r"std::optional\s*<[^<>;()]*(?:<[^<>]*>)?[^<>;()]*>\s+\w+\s*(?:\{[^{}]*\})?\s*;"
)

# unordered_map/unordered_set variable declarations; captures the name.
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*(?:[;{=]|$)"
)


# Encoding prefixes that turn `"` into a raw-string opener when suffixed
# with R (maximal identifier run immediately before the quote).
_RAW_PREFIXES = ("R", "u8R", "uR", "UR", "LR")


def strip_comments_and_strings(text: str) -> list[str]:
    """Per-line copy of `text` with comments and string/char literals blanked.

    Layout (line count, column positions) is preserved so findings point at
    the real source. The original lines are kept separately for allow().

    Handles the token shapes a naive quote scanner corrupts: digit
    separators (1'000'000 — a pp-number state, so u8'a' still opens a char
    literal) and raw strings (R"delim(...)delim" — contents blanked through
    the matching close, however many quotes or escapes they contain).
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    cur = []
    prev = ""  # previous source char consumed in code state
    in_number = False  # inside a pp-number token (digit separators live here)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if in_number:
                # pp-number: digits, letters (hex/suffixes), '.', the digit
                # separator, and a sign right after an exponent marker.
                if c.isalnum() or c in "._'" or (c in "+-" and prev in "eEpP"):
                    cur.append(c)
                    prev = c
                    i += 1
                    continue
                in_number = False
            if c.isdigit() and not (prev.isalnum() or prev == "_"):
                in_number = True
                cur.append(c)
                prev = c
                i += 1
                continue
            if c == "/" and nxt == "/":
                state = "line_comment"
                cur.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                cur.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string? The maximal identifier run ending here must be
                # exactly an encoding prefix + R (so MACRO_R"..." is not one).
                j = i
                while j > 0 and (text[j - 1].isalnum() or text[j - 1] == "_"):
                    j -= 1
                if text[j:i] in _RAW_PREFIXES:
                    paren = text.find("(", i + 1, i + 18)  # delimiter is <= 16 chars
                    end = -1
                    if paren != -1:
                        close = ")" + text[i + 1 : paren] + '"'
                        end = text.find(close, paren + 1)
                    if end != -1:
                        stop = end + len(close)
                        cur.append(" ")  # the opening quote
                        for k in range(i + 1, stop):
                            cur.append("\n" if text[k] == "\n" else " ")
                        prev = '"'
                        i = stop
                        continue
                    # Malformed raw string: fall through as a plain string.
                state = "string"
                cur.append(" ")
                prev = c
                i += 1
                continue
            if c == "'":
                state = "char"
                cur.append(" ")
                prev = c
                i += 1
                continue
            cur.append(c)
            prev = c
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                prev = "\n"
                cur.append("\n")
            else:
                cur.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                prev = " "
                cur.append("  ")
                i += 2
                continue
            cur.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                cur.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                cur.append(" ")
            elif c == "\n":  # unterminated (macro tricks); bail to code
                state = "code"
                cur.append("\n")
            else:
                cur.append(" ")
        i += 1
    return "".join(cur).split("\n")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed_rules(raw_lines: list[str], code_lines: list[str], idx: int) -> set[str]:
    """Rules suppressed on line `idx` (0-based).

    An allow() counts when it sits on the line itself, the line above, or —
    for a statement spanning multiple lines — trailing any later line of the
    same statement (scan forward until a line whose code contains ;/{/},
    capped so a pathological file cannot make this quadratic).
    """
    rules: set[str] = set()

    def collect(j: int) -> None:
        if 0 <= j < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[j])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))

    collect(idx)
    collect(idx - 1)
    j = idx
    while (
        j < min(idx + 10, len(raw_lines) - 1)
        and not STATEMENT_END_RE.search(code_lines[j])
    ):
        j += 1
        collect(j)
    return rules


def collect_unordered_names(files: list[Path]) -> set[str]:
    names: set[str] = set()
    for path in files:
        text = path.read_text(encoding="utf-8", errors="replace")
        for line in strip_comments_and_strings(text):
            for m in UNORDERED_DECL_RE.finditer(line):
                names.add(m.group(1))
    return names


def iter_patterns(names: set[str]) -> list[tuple[re.Pattern, str]]:
    if not names:
        return []
    alt = "|".join(re.escape(n) for n in sorted(names))
    return [
        (
            re.compile(r"for\s*\([^;)]*:\s*(?:this->)?(" + alt + r")\s*\)"),
            "range-for over unordered container '{}' (hash order; sort a "
            "snapshot or use std::map/std::set)",
        ),
        (
            re.compile(r"=\s*(?:this->)?(" + alt + r")\s*\.\s*begin\s*\("),
            "iterator loop over unordered container '{}' (hash order)",
        ),
        (
            re.compile(r"erase_if\s*\(\s*(?:this->)?(" + alt + r")\b"),
            "erase_if over unordered container '{}' (hash-order traversal)",
        ),
    ]


def lint_file(path: Path, rel: str, unordered_iter: list[tuple[re.Pattern, str]]) -> list[Finding]:
    text = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = text.split("\n")
    code_lines = strip_comments_and_strings(text)
    findings: list[Finding] = []
    in_raw_new_scope = any(f"/{d}" in f"/{rel}" for d in RAW_NEW_DIRS)
    in_hot_path_scope = any(f"/{d}" in f"/{rel}" for d in ORDERED_CONTAINER_DIRS)
    in_hot_struct_scope = any(f"/{rel}".endswith(f"/{f}") for f in HOT_STRUCT_FILES)

    def add(idx: int, rule: str, message: str) -> None:
        if rule in allowed_rules(raw_lines, code_lines, idx):
            return
        findings.append(Finding(path, idx + 1, rule, message))

    for idx, line in enumerate(code_lines):
        if WALLCLOCK_RE.search(line):
            add(idx, "wallclock", "wall-clock time source (simulated time comes from the EventQueue)")
        if RAND_RE.search(line):
            add(idx, "rand", "non-seeded randomness (use the run's seeded sim::Rng)")
        if PTR_KEY_RE.search(line):
            add(idx, "ptr-key", "pointer-keyed ordered container (address order is nondeterministic)")
        if in_hot_struct_scope and HOT_STRUCT_OPTIONAL_RE.search(line):
            add(idx, "hot-struct-optional",
                "std::optional member in a per-packet hot struct (use a presence bit + "
                "plain member like TcpSegment::OptBit, or justify with "
                "allow(hot-struct-optional))")
        if in_hot_path_scope and ORDERED_CONTAINER_RE.search(line):
            add(idx, "ordered-container",
                "std::map/std::set in a hot-path file (node per element; use a flat "
                "sorted vector or tcp/seg_ring.h, or justify with allow(ordered-container))")
        if in_raw_new_scope:
            if (NEW_RE.search(line) or DELETE_RE.search(line)) and not EQ_DELETE_RE.search(line):
                add(idx, "raw-new", "raw new/delete in the packet hot path (use PacketPool / owned containers)")
            elif MALLOC_FREE_RE.search(line):
                add(idx, "raw-new", "malloc/free in the packet hot path (use PacketPool / owned containers)")
        for pattern, msg in unordered_iter:
            m = pattern.search(line)
            if m:
                add(idx, "unordered-iter", msg.format(m.group(1)))
    return findings


def run(root: Path, paths: list[str]) -> int:
    files: list[Path] = []
    for p in paths:
        base = (root / p) if not Path(p).is_absolute() else Path(p)
        if base.is_file():
            files.append(base)
        elif base.is_dir():
            files.extend(f for f in sorted(base.rglob("*")) if f.suffix in CXX_SUFFIXES)
        else:
            print(f"mpr_lint: no such path: {base}", file=sys.stderr)
            return 2
    unordered = collect_unordered_names(files)
    patterns = iter_patterns(unordered)
    findings: list[Finding] = []
    for f in files:
        try:
            rel = str(f.relative_to(root))
        except ValueError:
            rel = str(f)
        findings.extend(lint_file(f, rel, patterns))
    for finding in findings:
        print(finding)
    if findings:
        print(f"mpr_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repo root (paths are resolved against it)")
    ap.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint")
    args = ap.parse_args()
    return run(Path(args.root).resolve(), args.paths or ["src"])


if __name__ == "__main__":
    sys.exit(main())
