#!/usr/bin/env python3
"""mpr_analyze -- build-aware static analysis for the simulator tree.

Three passes above tools/mpr_lint.py's token rules (see README "Static
analysis" for the full three-tier story):

  layering  #include-graph checks against the module DAG declared in
            tools/mpr_analyze.conf: cycles, layer inversions, unresolved
            includes, orphan headers. Needs only the source tree.
  hotpath   nm/objdump audit of the declared hot-path functions from an
            optimized build: no allocation/throw/time/random calls may
            survive inlining into their emitted code.
  reach     symbol-level call-graph reachability from simulation entry
            points to banned nondeterminism sources, path included in
            the finding.

Suppressions/baseline: tools/mpr_analyze_suppressions.txt, one
`<rule> | <location-glob> | <justification>` per line. Findings are
emitted as human-readable text and (with --json) a machine-readable
report CI archives as an artifact.

Usage: mpr_analyze.py [--root DIR] [--build DIR] [--json FILE] [pass...]
Exit status: 0 clean, 1 findings, 2 usage/environment error
(the same contract as mpr_lint.py).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from mpranalyze import hotpath, layering, reach  # noqa: E402
from mpranalyze.config import ConfigError, load_config  # noqa: E402
from mpranalyze.findings import Report, SuppressionError, load_suppressions  # noqa: E402
from mpranalyze.objects import ToolError, build_model  # noqa: E402

ALL_PASSES = ("layering", "hotpath", "reach")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None, help="repo root (default: the tools/ parent)")
    ap.add_argument(
        "--build",
        default=None,
        help="build dir with compile_commands.json + objects"
        " (required for the hotpath/reach passes; default: <root>/build)",
    )
    ap.add_argument("--config", default=None, help="config file (default: tools/mpr_analyze.conf)")
    ap.add_argument(
        "--suppressions",
        default=None,
        help="suppression/baseline file (default: tools/mpr_analyze_suppressions.txt)",
    )
    ap.add_argument("--json", default=None, help="also write a JSON report to this path")
    ap.add_argument(
        "passes",
        nargs="*",
        default=[],
        help=f"passes to run, in order (default: all of {', '.join(ALL_PASSES)})",
    )
    args = ap.parse_args()

    root = Path(args.root).resolve() if args.root else Path(__file__).resolve().parent.parent
    build = Path(args.build).resolve() if args.build else root / "build"
    config_path = Path(args.config) if args.config else root / "tools" / "mpr_analyze.conf"
    sup_path = (
        Path(args.suppressions)
        if args.suppressions
        else root / "tools" / "mpr_analyze_suppressions.txt"
    )
    passes = args.passes or list(ALL_PASSES)
    for p in passes:
        if p not in ALL_PASSES:
            print(f"mpr_analyze: unknown pass '{p}' (known: {', '.join(ALL_PASSES)})",
                  file=sys.stderr)
            return 2

    try:
        cfg = load_config(config_path)
        report = Report(suppressions=load_suppressions(sup_path))
    except (ConfigError, SuppressionError, OSError) as e:
        print(f"mpr_analyze: {e}", file=sys.stderr)
        return 2

    try:
        if "layering" in passes:
            report.extend(layering.run_pass(root, cfg))
            report.passes_run.append("layering")
        if "hotpath" in passes or "reach" in passes:
            model = build_model(build, root)
            if "hotpath" in passes:
                report.extend(hotpath.run_pass(cfg, model))
                report.passes_run.append("hotpath")
            if "reach" in passes:
                report.extend(reach.run_pass(cfg, model))
                report.passes_run.append("reach")
    except ToolError as e:
        print(f"mpr_analyze: {e}", file=sys.stderr)
        return 2

    report.finish(sup_path if sup_path.exists() else None)
    print(report.render_human())
    if args.json:
        report.write_json(Path(args.json))
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
