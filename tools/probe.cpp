#include <cstdio>
#include "experiment/testbed.h"
#include "experiment/carriers.h"
#include "app/http.h"
using namespace mpr;
using namespace mpr::experiment;

int main() {
  TestbedConfig tbc; tbc.seed = 5; tbc.cellular = netem::verizon_lte();
  Testbed tb{tbc};
  tcp::TcpConfig tcfg;
  app::TcpHttpServer server(tb.server(), kHttpPort, tcfg, [](std::uint64_t){ return 16ull<<20; });
  app::TcpHttpClient client(tb.client(), tcfg, kClientCellAddr, {kServerAddr1, kHttpPort});
  bool done=false;
  client.get(16ull<<20, [&](const app::FetchResult& r){ done=true;
    std::printf("done at %.2fs\n", r.download_time().to_seconds()); });
  // periodic probe
  std::function<void()> probe = [&]{
    if (done) return;
    tcp::TcpEndpoint* sep = server.connections().empty()?nullptr:server.connections()[0];
    std::printf("t=%6.2f queue=%7llu rto_to=%llu cwnd=%7.0f ssthresh=%llu srtt=%6.1fms flight=%llu\n",
      tb.sim().now().to_seconds(),
      (unsigned long long)tb.cell_access().downlink().queued_bytes(),
      sep?(unsigned long long)sep->metrics().timeouts:0,
      sep?sep->cwnd_bytes():0.0,
      sep?(unsigned long long)sep->ssthresh_bytes():0,
      sep?sep->srtt().to_millis():0.0,
      sep?(unsigned long long)sep->bytes_in_flight():0);
    tb.sim().after(sim::Duration::millis(500), probe);
  };
  tb.sim().after(sim::Duration::millis(100), probe);
  while(!done && tb.sim().events().step()) {}
  return 0;
}
