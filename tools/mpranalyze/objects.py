"""Object-file model shared by the hotpath and reach passes.

Parses `nm`/`objdump` output for the objects named by a Release build's
compile_commands.json into a symbol-level call graph:

  function symbol -> set of relocation targets inside its body

A relocation inside a function's disassembly is the ground truth the
token lint cannot see: it survives inlining, template instantiation and
LTO-free comdat folding, and it names the *emitted* callee. Targets are
kept mangled; demangling is batched through c++filt for matching and
display. Section-relative targets (`.text.unlikely+0x40`, local cold
fragments) are resolved through the object's symbol table so calls into
split-out `.cold`/`.part` clones stay edges. Calls the assembler
already resolved -- a callee defined in the *same section* of the same
TU carries no relocation at all -- are recovered from objdump's
`call <symbol>` annotations instead, so intra-TU helper chains stay
visible to the reach pass.

Known blind spot (documented in README): indirect calls -- virtual
dispatch and function pointers -- carry no relocation at the call site.
Taking a function's address *is* visible, and the reach pass also
reports direct banned calls in functions it cannot reach from an entry
point, so a banned call cannot hide behind a pointer; only the narrated
path can understate how it is reached.
"""

from __future__ import annotations

import json
import re
import shlex
import subprocess
from dataclasses import dataclass, field
from pathlib import Path


class ToolError(Exception):
    """Environment problem (missing tool, missing build artifacts)."""


@dataclass
class FunctionInfo:
    symbol: str  # mangled, possibly with .cold/.part.N suffix
    objects: set[str] = field(default_factory=set)  # build-relative object paths
    calls: set[str] = field(default_factory=set)  # mangled relocation targets


@dataclass
class ObjectModel:
    # Merged across objects: comdat (template/inline) functions appear in
    # several objects; their call sets are unioned.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    demangled: dict[str, str] = field(default_factory=dict)

    def function(self, symbol: str) -> FunctionInfo:
        fi = self.functions.get(symbol)
        if fi is None:
            fi = self.functions[symbol] = FunctionInfo(symbol)
        return fi

    def pretty(self, symbol: str) -> str:
        return self.demangled.get(symbol, symbol)


def find_objects(build_dir: Path, root: Path, under: str = "src") -> list[tuple[Path, Path]]:
    """(source, object) pairs from compile_commands.json for sources under
    `root/under`. Object paths are returned build-relative when possible so
    manifest globs stay machine-independent."""
    cc_path = build_dir / "compile_commands.json"
    if not cc_path.exists():
        raise ToolError(
            f"{cc_path} not found -- configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
            " (the default for this tree)"
        )
    entries = json.loads(cc_path.read_text(encoding="utf-8"))
    scope = (root / under).resolve()
    pairs: list[tuple[Path, Path]] = []
    for e in entries:
        src = Path(e["file"])
        if not src.is_absolute():
            src = Path(e["directory"]) / src
        try:
            src.resolve().relative_to(scope)
        except ValueError:
            continue
        out = e.get("output")
        if out is None:
            argv = shlex.split(e["command"]) if "command" in e else list(e.get("arguments", []))
            out = None
            for i, a in enumerate(argv):
                if a == "-o" and i + 1 < len(argv):
                    out = argv[i + 1]
        if out is None:
            continue
        obj = Path(out)
        if not obj.is_absolute():
            obj = Path(e["directory"]) / obj
        pairs.append((src, obj))
    if not pairs:
        raise ToolError(f"compile_commands.json names no sources under {scope}")
    missing = [str(o) for _, o in pairs if not o.exists()]
    if missing:
        raise ToolError(
            f"{len(missing)} object file(s) missing (build the tree first), e.g. {missing[0]}"
        )
    return pairs


def _run(argv: list[str]) -> str:
    try:
        proc = subprocess.run(argv, capture_output=True, text=True, check=True)
    except FileNotFoundError as e:
        raise ToolError(f"required tool not found: {argv[0]}") from e
    except subprocess.CalledProcessError as e:
        raise ToolError(f"{' '.join(argv[:2])} failed: {e.stderr.strip()[:200]}") from e
    return proc.stdout


# objdump -t: "0000000000000040 l     F .text.unlikely  0000000000000050 name"
SYMTAB_RE = re.compile(
    r"^([0-9a-f]+)\s+(\S+)\s+(?:\S+\s+)?F\s+(\S+)\s+([0-9a-f]+)\s+(\S+)$"
)
FUNC_HEADER_RE = re.compile(r"^[0-9a-f]+ <(.+)>:$")
RELOC_RE = re.compile(r"^\s+[0-9a-f]+:\s+R_\S+\s+(.+?)\s*$")
TARGET_OFFSET_RE = re.compile(r"^(.*?)([+-]0x[0-9a-f]+)?$")
# Assembler-resolved direct call/tail-jump: `call 30 <_ZN3fix6helperEv>`.
# Conditional branches are always intra-function and deliberately skipped.
CALL_TARGET_RE = re.compile(
    r"^\s+[0-9a-f]+:\s+(?:call|jmp)q?\s+(?:0x)?[0-9a-f]+\s+<([^>]+)>\s*$"
)


def _parse_symtab(obj: Path) -> dict[str, list[tuple[int, str]]]:
    """section -> sorted [(addr, symbol)] of defined function symbols."""
    sections: dict[str, list[tuple[int, str]]] = {}
    for line in _run(["objdump", "-t", str(obj)]).splitlines():
        m = SYMTAB_RE.match(line)
        if m:
            addr, _flags, section, _size, name = m.groups()
            sections.setdefault(section, []).append((int(addr, 16), name))
    for syms in sections.values():
        syms.sort()
    return sections


def _resolve_section_target(
    sections: dict[str, list[tuple[int, str]]], section: str, offset: int
) -> str | None:
    """Maps `.text.unlikely+0x40` to the covering function symbol."""
    syms = sections.get(section)
    if not syms:
        return None
    best = None
    for addr, name in syms:
        if addr <= offset:
            best = name
        else:
            break
    return best


def parse_object(obj: Path, model: ObjectModel, obj_label: str) -> None:
    """Adds `obj`'s functions and their relocation targets to `model`."""
    sections = _parse_symtab(obj)
    disasm = _run(["objdump", "-dr", "--no-show-raw-insn", str(obj)])
    lines = disasm.splitlines()
    current: FunctionInfo | None = None
    for i, line in enumerate(lines):
        m = FUNC_HEADER_RE.match(line)
        if m:
            current = model.function(m.group(1))
            current.objects.add(obj_label)
            continue
        if current is None:
            continue
        m = RELOC_RE.match(line)
        if m:
            tm = TARGET_OFFSET_RE.match(m.group(1))
            target, off = tm.group(1), tm.group(2)
            if not target:
                continue
            if target.startswith("."):
                # Section-relative: calls into local symbols (cold
                # fragments, static functions) land here. Only text
                # sections hold code.
                if target.startswith(".text"):
                    resolved = _resolve_section_target(
                        sections, target, int(off, 16) if off else 0
                    )
                    if resolved is not None:
                        current.calls.add(resolved)
                continue
            current.calls.add(target)
            continue
        m = CALL_TARGET_RE.match(line)
        if m:
            # Trust the annotation only when no relocation overrides it on
            # the next line -- an unresolved call's placeholder address is
            # annotated with whatever symbol happens to cover it.
            if i + 1 < len(lines) and RELOC_RE.match(lines[i + 1]):
                continue
            target = TARGET_OFFSET_RE.match(m.group(1)).group(1)
            if target and target != current.symbol and not target.startswith("."):
                current.calls.add(target)


def demangle_all(model: ObjectModel) -> None:
    names: set[str] = set()
    for fi in model.functions.values():
        names.add(fi.symbol)
        names.update(fi.calls)
    ordered = sorted(names)
    if not ordered:
        return
    proc = subprocess.run(
        ["c++filt"], input="\n".join(ordered) + "\n", capture_output=True, text=True
    )
    if proc.returncode != 0:
        raise ToolError(f"c++filt failed: {proc.stderr.strip()[:200]}")
    lines = proc.stdout.splitlines()
    if len(lines) != len(ordered):
        raise ToolError("c++filt output line count mismatch")
    model.demangled = dict(zip(ordered, lines))


def build_model(build_dir: Path, root: Path) -> ObjectModel:
    model = ObjectModel()
    for _src, obj in find_objects(build_dir, root):
        try:
            label = str(obj.relative_to(build_dir))
        except ValueError:
            label = str(obj)
        parse_object(obj, model, label)
    demangle_all(model)
    return model
