"""Shared findings framework: rule-tagged findings, a checked-in
suppression file, and human + JSON rendering.

Every pass reports Finding objects. A finding carries a stable rule id
(`<pass>.<check>`, e.g. `layering.cycle`, `hotpath.alloc`), a location
string (file:line for source findings, `object:function` for symbol
findings) and, where it helps, the path that proves the finding (an
include cycle, a call chain to a banned symbol).

Suppressions live in a checked-in file, one per line:

    <rule> | <location-glob> | <justification>

The justification is mandatory -- a suppression is a documented,
deliberate exception, not a mute button. Suppressions whose rule's pass
ran but which matched nothing are themselves reported
(`meta.unused-suppression`) so the baseline cannot rot silently.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from pathlib import Path

# Maps a rule id to the pass that owns it, via prefix. Used to scope the
# unused-suppression check to passes that actually ran.
PASS_OF_RULE_PREFIX = {
    "layering": "layering",
    "hotpath": "hotpath",
    "reach": "reach",
}


def pass_of_rule(rule: str) -> str | None:
    return PASS_OF_RULE_PREFIX.get(rule.split(".", 1)[0])


@dataclass
class Finding:
    rule: str
    location: str
    message: str
    # Optional supporting chain: include cycle members, call path, etc.
    path: list[str] = field(default_factory=list)

    def render(self) -> str:
        out = f"{self.location}: [{self.rule}] {self.message}"
        if self.path:
            out += "".join(f"\n    {'-> ' if i else '   '}{p}" for i, p in enumerate(self.path))
        return out

    def to_json(self) -> dict:
        d = {"rule": self.rule, "location": self.location, "message": self.message}
        if self.path:
            d["path"] = self.path
        return d


@dataclass
class Suppression:
    rule: str
    location_glob: str
    justification: str
    line: int  # in the suppression file, for diagnostics
    hits: int = 0

    def matches(self, finding: Finding) -> bool:
        return self.rule == finding.rule and fnmatch.fnmatchcase(
            finding.location, self.location_glob
        )


class SuppressionError(Exception):
    """Malformed suppression file (missing field, empty justification)."""


def load_suppressions(path: Path) -> list[Suppression]:
    """Parses the suppression file; '#' comments and blank lines ignored."""
    sups: list[Suppression] = []
    if not path.exists():
        return sups
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|", 2)]
        if len(parts) != 3 or not all(parts):
            raise SuppressionError(
                f"{path}:{lineno}: expected '<rule> | <location-glob> | <justification>'"
                " with all three fields non-empty"
            )
        sups.append(Suppression(parts[0], parts[1], parts[2], lineno))
    return sups


@dataclass
class Report:
    """Accumulates findings across passes and applies suppressions."""

    suppressions: list[Suppression] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    passes_run: list[str] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        for sup in self.suppressions:
            if sup.matches(finding):
                sup.hits += 1
                self.suppressed.append((finding, sup))
                return
        self.findings.append(finding)

    def extend(self, findings: list[Finding]) -> None:
        for f in findings:
            self.add(f)

    def finish(self, suppression_file: Path | None) -> None:
        """Flags suppressions that matched nothing in a pass that ran."""
        for sup in self.suppressions:
            if sup.hits:
                continue
            owner = pass_of_rule(sup.rule)
            if owner is not None and owner not in self.passes_run:
                continue  # its pass did not run; cannot judge it
            where = f"{suppression_file}:{sup.line}" if suppression_file else f"line {sup.line}"
            self.findings.append(
                Finding(
                    "meta.unused-suppression",
                    where,
                    f"suppression '{sup.rule} | {sup.location_glob}' matched no finding"
                    " -- remove it or fix the glob",
                )
            )

    def render_human(self) -> str:
        lines = [f.render() for f in self.findings]
        if self.suppressed:
            lines.append(
                f"({len(self.suppressed)} finding(s) suppressed by the baseline file)"
            )
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        if self.findings:
            by_rule = ", ".join(f"{r}: {n}" for r, n in sorted(counts.items()))
            lines.append(f"mpr_analyze: {len(self.findings)} finding(s) ({by_rule})")
        else:
            lines.append(
                f"mpr_analyze: clean ({', '.join(self.passes_run) or 'no passes run'})"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return {
            "version": 1,
            "passes": self.passes_run,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [
                {**f.to_json(), "justification": s.justification} for f, s in self.suppressed
            ],
            "counts": counts,
            "clean": not self.findings,
        }

    def write_json(self, path: Path) -> None:
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8")
