"""Pass 1 -- include-layering checks over the source tree.

Builds the file-level `#include "..."` graph of src/ and enforces the
module DAG declared in [layers]:

  layering.unknown-module  a src/ file outside every declared module
  layering.unresolved      a quoted include that resolves to no file in
                           the tree (angle includes are system headers
                           and are ignored)
  layering.cycle           a strongly-connected component in the file
                           include graph (one finding per cycle, with
                           the cycle printed)
  layering.inversion       an include edge whose target module is not in
                           the includer module's declared dependency set
  layering.orphan          a header under src/ that no translation unit
                           (a .cpp under src/, tests/, tools/, bench/ or
                           examples/) reaches through the include
                           closure -- dead interface surface that the
                           compiler never sees and the other passes can
                           never audit

Pure-source pass: needs no build tree, so it runs first and fast.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from .config import AnalyzeConfig
from .findings import Finding

HEADER_SUFFIXES = {".h", ".hpp"}
SOURCE_SUFFIXES = {".cc", ".cpp", ".cxx"}
# Directories whose .cpp files count as translation-unit roots for the
# orphan check. tests/tools/bench/examples may include anything in src/.
TU_DIRS = ("src", "tests", "tools", "bench", "examples")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


@dataclass
class IncludeEdge:
    includer: Path  # repo-relative
    line: int
    spec: str  # the quoted include text
    target: Path | None  # repo-relative resolved path, None if unresolved


@dataclass
class IncludeGraph:
    root: Path
    src_files: list[Path] = field(default_factory=list)  # repo-relative, under src/
    tu_files: list[Path] = field(default_factory=list)  # repo-relative .cpp roots
    edges: dict[Path, list[IncludeEdge]] = field(default_factory=dict)


def _strip_comments(text: str) -> list[str]:
    """Blanks // and /* */ comments, preserving line structure, so an
    #include inside a commented-out block is not an edge. String literals
    are irrelevant here: an #include directive cannot start inside one."""
    out: list[str] = []
    in_block = False
    for line in text.split("\n"):
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2 :]
            in_block = False
        # Strip any block comments opening (and possibly closing) here.
        while True:
            start = line.find("/*")
            lc = line.find("//")
            if 0 <= lc < (start if start >= 0 else len(line)):
                line = line[:lc]
                break
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2 :]
        out.append(line)
    return out


def parse_includes(root: Path, rel: Path) -> list[tuple[int, str]]:
    """Returns (line, spec) for every quoted include in `rel`."""
    text = (root / rel).read_text(encoding="utf-8", errors="replace")
    found: list[tuple[int, str]] = []
    for lineno, line in enumerate(_strip_comments(text), 1):
        m = INCLUDE_RE.match(line)
        if m:
            found.append((lineno, m.group(1)))
    return found


def resolve_include(root: Path, includer: Path, spec: str) -> Path | None:
    """Quoted-include lookup mirroring the build: the includer's own
    directory first, then the src/ include root (every target publishes
    ${CMAKE_SOURCE_DIR}/src)."""
    for base in (includer.parent, Path("src")):
        cand = base / spec
        if (root / cand).is_file():
            return Path(*cand.parts)  # normalized
    return None


def build_graph(root: Path) -> IncludeGraph:
    g = IncludeGraph(root=root)
    src = root / "src"
    for f in sorted(src.rglob("*")):
        if f.suffix in HEADER_SUFFIXES | SOURCE_SUFFIXES:
            g.src_files.append(f.relative_to(root))
    for d in TU_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for f in sorted(base.rglob("*")):
            if f.suffix in SOURCE_SUFFIXES:
                g.tu_files.append(f.relative_to(root))
    for rel in {*g.src_files, *g.tu_files}:
        edges = []
        for lineno, spec in parse_includes(root, rel):
            edges.append(IncludeEdge(rel, lineno, spec, resolve_include(root, rel, spec)))
        g.edges[rel] = edges
    return g


def module_of(rel: Path) -> str | None:
    """src/<module>/... -> <module>; anything else has no module."""
    parts = rel.parts
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def _cycles(graph: IncludeGraph) -> list[list[Path]]:
    """Tarjan SCC over the src-file include graph; returns components of
    size > 1 (plus direct self-includes), each rotated to start at its
    lexicographically smallest member so findings are stable."""
    adj: dict[Path, list[Path]] = {f: [] for f in graph.src_files}
    for f in graph.src_files:
        for e in graph.edges.get(f, []):
            if e.target is not None and e.target in adj:
                adj[f].append(e.target)

    index: dict[Path, int] = {}
    low: dict[Path, int] = {}
    on_stack: set[Path] = set()
    stack: list[Path] = []
    sccs: list[list[Path]] = []
    counter = [0]

    def strongconnect(v: Path) -> None:
        # Iterative Tarjan: (node, iterator-position) frames.
        work = [(v, 0)]
        while work:
            node, pi = work.pop()
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            succs = adj[node]
            while pi < len(succs):
                w = succs[pi]
                pi += 1
                if w not in index:
                    work.append((node, pi))
                    work.append((w, 0))
                    recurse = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if recurse:
                continue
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1 or node in adj[node]:
                    sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for f in graph.src_files:
        if f not in index:
            strongconnect(f)

    out = []
    for comp in sccs:
        comp = sorted(comp)
        out.append(comp)
    return sorted(out)


def run_pass(root: Path, cfg: AnalyzeConfig) -> list[Finding]:
    graph = build_graph(root)
    findings: list[Finding] = []

    # Module membership + unknown modules.
    for f in graph.src_files:
        mod = module_of(f)
        if mod is None or mod not in cfg.layers:
            findings.append(
                Finding(
                    "layering.unknown-module",
                    str(f),
                    f"file is outside every declared [layers] module"
                    f" (module '{mod}' not declared)",
                )
            )

    # Unresolved quoted includes (src files only; tests may include
    # generated or test-local headers the repo model does not track).
    for f in graph.src_files:
        for e in graph.edges.get(f, []):
            if e.target is None:
                findings.append(
                    Finding(
                        "layering.unresolved",
                        f"{e.includer}:{e.line}",
                        f'#include "{e.spec}" resolves to no file in the tree',
                    )
                )

    # Cycles.
    for comp in _cycles(graph):
        cycle = [str(p) for p in comp] + [str(comp[0])]
        findings.append(
            Finding(
                "layering.cycle",
                str(comp[0]),
                f"include cycle of {len(comp)} file(s)",
                path=cycle,
            )
        )

    # Layer inversions.
    for f in graph.src_files:
        mod = module_of(f)
        if mod is None or mod not in cfg.layers:
            continue
        allowed = cfg.layers[mod] | {mod}
        for e in graph.edges.get(f, []):
            if e.target is None:
                continue
            tmod = module_of(e.target)
            if tmod is None or tmod not in cfg.layers:
                continue
            if tmod not in allowed:
                findings.append(
                    Finding(
                        "layering.inversion",
                        f"{e.includer}:{e.line}",
                        f"module '{mod}' may not include '{tmod}'"
                        f" (allowed: {', '.join(sorted(allowed))})"
                        f" -- '{e.spec}'",
                    )
                )

    # Orphan headers: closure from every TU.
    reached: set[Path] = set()
    work = list(graph.tu_files)
    for f in work:
        reached.add(f)
    while work:
        f = work.pop()
        for e in graph.edges.get(f, []):
            if e.target is not None and e.target not in reached:
                reached.add(e.target)
                # Targets outside src/ (test-local headers) have no edges
                # recorded; .get below handles them.
                work.append(e.target)
    for f in graph.src_files:
        if f.suffix in HEADER_SUFFIXES and f not in reached:
            findings.append(
                Finding(
                    "layering.orphan",
                    str(f),
                    "header is reachable from no translation unit"
                    " (dead interface surface -- delete it or include it)",
                )
            )

    return findings
