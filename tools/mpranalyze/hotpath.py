"""Pass 2 -- hot-path symbol audit.

For every function the [hotpath] manifest declares, the *emitted* code
(every relocation inside its body, post-inlining) must not call:

  hotpath.alloc   operator new/delete, malloc/calloc/realloc/free --
                  an allocation per event/packet is the regression the
                  PacketPool and the flat hot structures exist to
                  prevent, and inlined container growth is exactly what
                  the token lint cannot see
  hotpath.throw   __cxa_throw / the std::__throw_* helpers -- a throw
                  expression living inside hot code drags EH setup and
                  cold paths into the working set
  hotpath.time    libc/chrono wall-clock reads
  hotpath.rand    non-seeded randomness (rand, std::random_device, ...)

plus:

  hotpath.missing a manifest entry that matched no defined symbol in
                  any matching object. This guards the manifest itself:
                  a renamed function would otherwise silently leave the
                  audit.

`.cold` fragments are exempt: the compiler proved them cold (exception
cleanup, abort paths), which is precisely "off the hot path". `.part.N`
outlined clones are ordinary reachable code and are audited with their
parent's rules.
"""

from __future__ import annotations

import fnmatch
import re

from .config import AnalyzeConfig
from .findings import Finding
from .objects import ObjectModel

RULE_OF_SET = {
    "banned-alloc": "hotpath.alloc",
    "banned-throw": "hotpath.throw",
    "banned-time": "hotpath.time",
    "banned-rand": "hotpath.rand",
}


def banned_rule(cfg: AnalyzeConfig, model: ObjectModel, target: str) -> str | None:
    """The hotpath rule `target` violates, or None. Patterns match the
    mangled and the demangled spelling."""
    pretty = model.pretty(target)
    for section, rule in RULE_OF_SET.items():
        for pat in cfg.banned[section]:
            if pat.fullmatch(target) or pat.fullmatch(pretty):
                return rule
    return None


_CLONE_SUFFIX_RE = re.compile(r"\.(cold|part\.\d+|constprop\.\d+|isra\.\d+)$")


def is_cold_fragment(symbol: str) -> bool:
    return symbol.endswith(".cold")


def run_pass(cfg: AnalyzeConfig, model: ObjectModel) -> list[Finding]:
    findings: list[Finding] = []
    for entry in cfg.hotpath:
        matched_any = False
        for symbol, fi in sorted(model.functions.items()):
            if is_cold_fragment(symbol):
                continue
            if not any(fnmatch.fnmatchcase(o, entry.object_glob) for o in fi.objects):
                continue
            pretty = model.pretty(symbol)
            if not (entry.symbol_re.search(pretty) or entry.symbol_re.search(symbol)):
                continue
            matched_any = True
            obj = sorted(fi.objects)[0]
            for target in sorted(fi.calls):
                rule = banned_rule(cfg, model, target)
                if rule is not None:
                    findings.append(
                        Finding(
                            rule,
                            f"{obj}:{pretty}",
                            f"emitted code calls banned symbol '{model.pretty(target)}'",
                        )
                    )
        if not matched_any:
            findings.append(
                Finding(
                    "hotpath.missing",
                    f"manifest:{entry.line}",
                    f"hot-path manifest entry '{entry.object_glob} :: "
                    f"{entry.symbol_re.pattern}' matched no defined function"
                    " -- was it renamed? fix the manifest so the audit"
                    " keeps covering it",
                )
            )
    return findings
