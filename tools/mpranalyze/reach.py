"""Pass 3 -- determinism reachability.

BFS over the symbol-level call graph of every src/ object, from the
declared simulation entry points ([entrypoints]) to the banned
nondeterminism sources ([banned-time] + [banned-rand]). A hit proves a
wall-clock or randomness call is linked into simulation execution --
through any depth of inlining and helper layers -- and the finding
prints the call path, which is the part a human needs to fix it.

  reach.wallclock  path from an entry point to a time source
  reach.rand       path from an entry point to a randomness source
  reach.direct     a src-defined function whose body calls a banned
                   source but which no entry point reaches. Indirect
                   dispatch (virtual calls, stored callbacks) is
                   invisible to relocation scanning, so an unreachable
                   direct caller is still reported -- the blind spot
                   hides paths, never the banned call itself.
  reach.no-entry   an [entrypoints] regex that matched no defined
                   function (manifest rot guard, like hotpath.missing).

`.cold` fragments are *included* here (unlike the hotpath pass):
nondeterminism is banned even on error paths -- a timestamp in a
quarantine record would still diverge runs.
"""

from __future__ import annotations

from collections import deque

from .config import AnalyzeConfig
from .findings import Finding
from .objects import ObjectModel


def _banned_kind(cfg: AnalyzeConfig, model: ObjectModel, target: str) -> str | None:
    pretty = model.pretty(target)
    for section, kind in (("banned-time", "wallclock"), ("banned-rand", "rand")):
        for pat in cfg.banned[section]:
            if pat.fullmatch(target) or pat.fullmatch(pretty):
                return kind
    return None


def run_pass(cfg: AnalyzeConfig, model: ObjectModel) -> list[Finding]:
    findings: list[Finding] = []

    entries: list[str] = []
    for pat in cfg.entrypoints:
        hits = [
            s
            for s, _fi in model.functions.items()
            if pat.search(model.pretty(s)) or pat.search(s)
        ]
        if not hits:
            findings.append(
                Finding(
                    "reach.no-entry",
                    f"entrypoints:{pat.pattern}",
                    "entry-point regex matched no defined function"
                    " -- was the entry point renamed?",
                )
            )
        entries.extend(hits)

    # BFS with parent pointers; first (shortest) path per banned target wins.
    parent: dict[str, str | None] = {}
    order = deque()
    for e in sorted(set(entries)):
        if e not in parent:
            parent[e] = None
            order.append(e)
    reached_banned: dict[tuple[str, str], list[str]] = {}
    while order:
        cur = order.popleft()
        fi = model.functions.get(cur)
        if fi is None:
            continue
        for target in sorted(fi.calls):
            kind = _banned_kind(cfg, model, target)
            if kind is not None:
                key = (kind, target)
                if key not in reached_banned:
                    path = [target]
                    node: str | None = cur
                    while node is not None:
                        path.append(node)
                        node = parent[node]
                    reached_banned[key] = [model.pretty(p) for p in reversed(path)]
            if target in model.functions and target not in parent:
                parent[target] = cur
                order.append(target)

    for (kind, target), path in sorted(reached_banned.items()):
        findings.append(
            Finding(
                f"reach.{kind}",
                model.pretty(target),
                f"banned {'time source' if kind == 'wallclock' else 'randomness source'}"
                f" '{model.pretty(target)}' is reachable from simulation entry"
                f" point '{path[0]}'",
                path=path,
            )
        )

    # Direct banned calls outside the reached set: the indirect-dispatch
    # safety net. Reported per (function, target).
    for symbol, fi in sorted(model.functions.items()):
        if symbol in parent:
            continue  # already covered by the BFS above
        for target in sorted(fi.calls):
            kind = _banned_kind(cfg, model, target)
            if kind is not None:
                obj = sorted(fi.objects)[0]
                findings.append(
                    Finding(
                        "reach.direct",
                        f"{obj}:{model.pretty(symbol)}",
                        f"calls banned symbol '{model.pretty(target)}' (not reached"
                        " from any declared entry point, but may run via stored"
                        " callbacks or virtual dispatch)",
                    )
                )
    return findings
