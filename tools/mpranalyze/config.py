"""Declarative config for the analysis passes (tools/mpr_analyze.conf).

A deliberately tiny sectioned format -- comments (#) and blank lines are
ignored, `[section]` headers open a section, and every other line is a
section entry. No external parser dependencies, so the file can carry
the module DAG, the hot-path manifest and the banned-symbol sets in one
reviewable place.

Sections:

  [layers]       `module: dep dep ...` -- the allowed-include DAG over
                 the directories of src/. A module may always include
                 itself; anything else must be listed.
  [hotpath]      `object-glob :: symbol-regex` -- functions whose
                 *emitted* code must stay free of allocation / throw /
                 time / randomness calls. The glob matches the object
                 path relative to the build dir; the regex matches the
                 demangled symbol.
  [entrypoints]  demangled-symbol regexes: where simulation execution
                 starts for the reachability pass.
  [banned-time], [banned-rand], [banned-alloc], [banned-throw]
                 symbol regexes (matched against the mangled *and* the
                 demangled name) for the banned call targets.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path


class ConfigError(Exception):
    pass


@dataclass
class HotpathEntry:
    object_glob: str
    symbol_re: re.Pattern
    line: int


@dataclass
class AnalyzeConfig:
    # module -> set of modules it may include (itself always implied)
    layers: dict[str, set[str]] = field(default_factory=dict)
    hotpath: list[HotpathEntry] = field(default_factory=list)
    entrypoints: list[re.Pattern] = field(default_factory=list)
    banned: dict[str, list[re.Pattern]] = field(default_factory=dict)

    def layer_check(self) -> None:
        """The declared DAG must reference only declared modules and be
        acyclic -- a cyclic declaration would make the inversion check
        vacuous."""
        for mod, deps in self.layers.items():
            for d in deps:
                if d not in self.layers:
                    raise ConfigError(f"[layers] {mod}: undeclared dependency '{d}'")
        # Kahn's algorithm over the declared edges.
        remaining = {m: set(d for d in deps if d != m) for m, deps in self.layers.items()}
        while remaining:
            roots = [m for m, deps in remaining.items() if not deps]
            if not roots:
                raise ConfigError(
                    "[layers] declared module graph is cyclic: "
                    + ", ".join(sorted(remaining))
                )
            for r in roots:
                del remaining[r]
            for deps in remaining.values():
                deps.difference_update(roots)


_BANNED_SECTIONS = ("banned-time", "banned-rand", "banned-alloc", "banned-throw")


def _compile(pattern: str, where: str) -> re.Pattern:
    try:
        return re.compile(pattern)
    except re.error as e:
        raise ConfigError(f"{where}: bad regex '{pattern}': {e}") from e


def load_config(path: Path) -> AnalyzeConfig:
    cfg = AnalyzeConfig(banned={k: [] for k in _BANNED_SECTIONS})
    section = None
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        where = f"{path}:{lineno}"
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip()
            known = ("layers", "hotpath", "entrypoints", *_BANNED_SECTIONS)
            if section not in known:
                raise ConfigError(f"{where}: unknown section [{section}]")
            continue
        if section is None:
            raise ConfigError(f"{where}: entry before any [section] header")
        if section == "layers":
            if ":" not in line:
                raise ConfigError(f"{where}: expected 'module: dep dep ...'")
            mod, _, deps = line.partition(":")
            mod = mod.strip()
            if mod in cfg.layers:
                raise ConfigError(f"{where}: module '{mod}' declared twice")
            cfg.layers[mod] = set(deps.split())
        elif section == "hotpath":
            if "::" not in line:
                raise ConfigError(f"{where}: expected 'object-glob :: symbol-regex'")
            glob, _, sym = line.partition("::")
            glob, sym = glob.strip(), sym.strip()
            if not glob or not sym:
                raise ConfigError(f"{where}: expected 'object-glob :: symbol-regex'")
            cfg.hotpath.append(HotpathEntry(glob, _compile(sym, where), lineno))
        elif section == "entrypoints":
            cfg.entrypoints.append(_compile(line, where))
        else:
            cfg.banned[section].append(_compile(line, where))
    cfg.layer_check()
    return cfg
