"""mpranalyze -- build-aware static analysis for the simulator tree.

Three passes over the repo + a Release build, sharing one findings
framework (tools/mpranalyze/findings.py) and one declarative config
(tools/mpr_analyze.conf):

  layering   #include-graph checks against the declared module DAG:
             cycles, layer inversions, unresolved includes, orphan
             headers no translation unit reaches.
  hotpath    nm/objdump audit of the emitted code of the declared
             hot-path functions: no allocation, throw, wall-clock or
             randomness calls may survive inlining into them.
  reach      symbol-level call-graph reachability from the simulation
             entry points to banned nondeterminism sources, with the
             offending path in the finding.

The driver is tools/mpr_analyze.py; exit-code contract matches
mpr_lint.py (0 clean, 1 findings, 2 usage/environment error).
"""

__all__ = ["findings", "config", "layering", "objects", "hotpath", "reach"]
