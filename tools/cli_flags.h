// Tiny --flag=value / --flag value parser for the CLI tools.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace mpr::tools {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const { return values_.contains(name); }

  [[nodiscard]] std::string get(const std::string& name, const std::string& def = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::atoll(it->second.c_str());
  }

  [[nodiscard]] bool get_bool(const std::string& name, bool def = false) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return def;
    return it->second != "false" && it->second != "0";
  }

  /// Parses sizes like "64k", "4m", "512".
  [[nodiscard]] std::uint64_t get_size(const std::string& name, std::uint64_t def) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return def;
    const std::string& v = it->second;
    char* end = nullptr;
    const double base = std::strtod(v.c_str(), &end);
    std::uint64_t mult = 1;
    if (end != nullptr && *end != '\0') {
      switch (*end) {
        case 'k': case 'K': mult = 1024; break;
        case 'm': case 'M': mult = 1024 * 1024; break;
        case 'g': case 'G': mult = 1024ull * 1024 * 1024; break;
        default: break;
      }
    }
    return static_cast<std::uint64_t>(base * static_cast<double>(mult));
  }

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mpr::tools
