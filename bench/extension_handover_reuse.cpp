// Extension (paper §7 open question) — how quickly MPTCP re-uses a
// re-established WiFi path: Paasch et al. "did not explore how quickly
// MPTCP can re-use re-established WiFi".
//
// A long download runs over WiFi+LTE; the WiFi interface goes out of range
// for a configurable outage, then returns. We measure the re-use delay:
// time from restoration until the next new data delivery over WiFi. The
// exponential RTO backoff of the stalled subflow makes this delay grow
// with the outage duration — the protocol probes the dead path ever more
// rarely.
#include "app/http.h"
#include "common.h"
#include "experiment/testbed.h"

using namespace mpr;
using namespace mpr::bench;

namespace {

struct ReuseResult {
  bool completed{false};
  double reuse_delay_s{-1};
  double download_s{0};
};

ReuseResult run_outage(double outage_s, std::uint64_t seed) {
  experiment::TestbedConfig tb_cfg = testbed_for(Carrier::kAtt);
  tb_cfg.seed = seed;
  tb_cfg.capture_trace = true;
  experiment::Testbed tb{tb_cfg};
  core::MptcpConfig cfg;
  app::MptcpHttpServer server{tb.server(), experiment::kHttpPort, cfg, {},
                              [](std::uint64_t) { return 128ull << 20; }};
  app::MptcpHttpClient client{
      tb.client(), cfg,
      {experiment::kClientWifiAddr, experiment::kClientCellAddr},
      net::SocketAddr{experiment::kServerAddr1, experiment::kHttpPort}};

  const sim::TimePoint down_at = sim::TimePoint::origin() + sim::Duration::seconds(2);
  const sim::TimePoint up_at = down_at + sim::Duration::from_seconds(outage_s);
  tb.sim().at(down_at, [&] { tb.wifi_access().set_down(true); });
  tb.sim().at(up_at, [&] { tb.wifi_access().set_down(false); });

  bool done = false;
  client.get(128 << 20, [&](const app::FetchResult&) { done = true; });
  const sim::TimePoint deadline = tb.sim().now() + sim::Duration::seconds(1200);
  while (!done && tb.sim().now() < deadline && tb.sim().events().step()) {
  }

  ReuseResult out;
  out.completed = done;
  out.download_s = tb.sim().now().to_seconds();
  for (const auto& rec : tb.trace()->records()) {
    if (rec.kind == net::TraceEvent::Kind::kDeliver && rec.payload > 0 &&
        rec.flow.dst.addr == experiment::kClientWifiAddr && rec.time > up_at) {
      out.reuse_delay_s = (rec.time - up_at).to_seconds();
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  header("Extension: handover", "WiFi re-use delay after an outage (128 MB download)",
         "re-use delay = restoration -> first new WiFi data; grows with RTO backoff");
  const int n = reps(5);
  std::printf("%-12s %-16s %-14s\n", "outage", "reuse delay", "(mean over runs)");
  for (const double outage : {0.5, 2.0, 8.0, 30.0}) {
    double sum = 0;
    int counted = 0;
    for (int i = 0; i < n; ++i) {
      const ReuseResult r = run_outage(outage, 4040 + static_cast<std::uint64_t>(i));
      if (r.completed && r.reuse_delay_s >= 0) {
        sum += r.reuse_delay_s;
        ++counted;
      }
    }
    if (counted == 0) {
      std::printf("%-12s (wifi never re-used)\n",
                  experiment::fmt_scalar(outage, "s", 1).c_str());
      continue;
    }
    std::printf("%-12s %-16s n=%d\n", experiment::fmt_scalar(outage, "s", 1).c_str(),
                experiment::fmt_scalar(sum / counted, "s", 2).c_str(), counted);
  }
  std::printf("\nShape check: re-use delay grows with outage length — the stalled\n"
              "subflow probes at exponentially backed-off RTOs — but is bounded by\n"
              "the dead-path RTO cap (TcpConfig::dead_rto_cap), so even a long\n"
              "outage leaves the restored path idle for at most about the cap.\n");
  return 0;
}
