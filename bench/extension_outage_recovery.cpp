// Extension (scenario subsystem) — download completion under a scripted
// mid-transfer WiFi blackout.
//
// A 16 MB download starts over WiFi+LTE; at t=2s the WiFi access goes dark
// for 10 s (every packet dropped), then recovers. MPTCP declares the WiFi
// subflow dead after consecutive RTOs, reinjects its stranded DSNs over
// cellular and keeps the transfer moving; single-path TCP over the same
// WiFi link can only sit out the blackout (plus the post-restore RTO wait).
// The same schedule replayed with `ifdown`/`ifup` additionally exercises
// REMOVE_ADDR and the re-join path.
#include "common.h"
#include "netem/faults.h"

using namespace mpr;
using namespace mpr::bench;

namespace {

constexpr std::uint64_t kObject = 16 * kMB;
constexpr double kOutageStart = 2.0;
constexpr double kOutageLen = 10.0;

netem::FaultSchedule blackout(bool iface_events) {
  netem::FaultSchedule s;
  if (iface_events) {
    s.iface_down(kOutageStart, "wifi").iface_up(kOutageStart + kOutageLen, "wifi");
  } else {
    s.outage(kOutageStart, "wifi").restore(kOutageStart + kOutageLen, "wifi");
  }
  return s;
}

void row(const std::string& label, const std::vector<RunResult>& rs) {
  int completed = 0;
  double reinjections = 0;
  for (const RunResult& r : rs) {
    if (r.completed) ++completed;
    reinjections += static_cast<double>(r.reinjections);
  }
  std::printf("%-26s %-20s completed=%d/%zu reinj=%.1f\n", label.c_str(), box_s(rs).c_str(),
              completed, rs.size(), reinjections / static_cast<double>(rs.size()));
}

}  // namespace

int main() {
  header("Extension: outage recovery",
         "16 MB download with a scripted 10 s WiFi blackout at t=2 s",
         "download time min/q1/med/q3/max (s); SP-WiFi pays the blackout, MP-2 routes around it");
  const int n = reps(10);
  const std::uint64_t seed = 7070;

  experiment::TestbedConfig tb = testbed_for(Carrier::kAtt);

  RunConfig base;
  base.file_bytes = kObject;
  base.timeout = sim::Duration::seconds(600);

  RunConfig mp_clean = base;
  RunConfig mp_outage = base;
  mp_outage.faults = blackout(/*iface_events=*/false);
  RunConfig mp_ifdown = base;
  mp_ifdown.faults = blackout(/*iface_events=*/true);
  RunConfig sp_outage = base;
  sp_outage.mode = PathMode::kSingleWifi;
  sp_outage.faults = blackout(/*iface_events=*/false);
  RunConfig sp_clean = base;
  sp_clean.mode = PathMode::kSingleWifi;

  row("MP-2 (no fault)", experiment::run_series(tb, mp_clean, n, seed));
  row("MP-2 + blackout", experiment::run_series(tb, mp_outage, n, seed));
  row("MP-2 + ifdown/ifup", experiment::run_series(tb, mp_ifdown, n, seed));
  row("SP-WiFi (no fault)", experiment::run_series(tb, sp_clean, n, seed));
  row("SP-WiFi + blackout", experiment::run_series(tb, sp_outage, n, seed));

  std::printf(
      "\nShape check: the MP-2 blackout penalty is a small fraction of the 10 s\n"
      "outage (stranded data is reinjected over cellular), while SP-WiFi's\n"
      "median grows by at least the blackout length. ifdown/ifup adds the\n"
      "REMOVE_ADDR round and the re-join handshake on top of the raw outage.\n");
  return 0;
}
