// Shared helpers for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the measurement campaign on the simulated testbed and prints the same
// rows/series the paper reports, annotated with the paper's reference
// values where the paper gives concrete numbers. Absolute values are not
// expected to match (the substrate is a calibrated simulator); the shape
// is the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "alloc_interposer.h"
#include "analysis/stats.h"
#include "experiment/carriers.h"
#include "experiment/run.h"
#include "experiment/series.h"
#include "experiment/table.h"
#include "net/packet_pool.h"
#include "sim/event_queue.h"
#include "sim/thread_pool.h"

namespace mpr::bench {

using analysis::Ccdf;
using analysis::Summary;
using analysis::summarize;
using experiment::Carrier;
using experiment::MatrixEntry;
using experiment::PathMode;
using experiment::RunConfig;
using experiment::RunResult;
using experiment::TestbedConfig;

inline constexpr std::uint64_t kKB = 1024;
inline constexpr std::uint64_t kMB = 1024 * 1024;

/// Repetitions per configuration; override with MPR_REPS for longer runs
/// (the paper performs 20 per period and location).
inline int reps(int default_reps) {
  if (const char* env = std::getenv("MPR_REPS"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return default_reps;
}

inline TestbedConfig testbed_for(Carrier carrier, bool hotspot = false) {
  TestbedConfig tb;
  tb.wifi = hotspot ? netem::wifi_hotspot() : netem::wifi_home();
  tb.cellular = experiment::carrier_profile(carrier);
  return tb;
}

/// Number of parallel campaign jobs this bench will use (MPR_JOBS).
inline unsigned jobs() { return sim::effective_jobs(); }

namespace detail {
inline std::chrono::steady_clock::time_point bench_start;

/// Perf trailer printed at exit: wall clock, simulator events executed
/// (summed over every run's EventQueue) and throughput, plus allocation
/// telemetry — heap allocations per event (global new interposer) and
/// packet-pool traffic (misses vs recycles) — so perf PRs have a
/// trajectory to compare against.
inline void print_perf_trailer() {
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - bench_start).count();
  const std::uint64_t events = sim::EventQueue::total_executed();
  const std::uint64_t heap = heap_allocations();
  const std::uint64_t pool_allocs = net::PacketPool::total_allocs();
  const std::uint64_t pool_reuses = net::PacketPool::total_reuses();
  const std::uint64_t acquires = pool_allocs + pool_reuses;
  std::printf("\n[perf] wall=%.2fs events=%llu rate=%.2fM events/s jobs=%u\n", wall_s,
              static_cast<unsigned long long>(events),
              wall_s > 0 ? static_cast<double>(events) / wall_s * 1e-6 : 0.0, jobs());
  std::printf(
      "[perf] heap_allocs=%llu (%.3f/event) pool_allocs=%llu pool_reuses=%llu "
      "(reuse=%.1f%%)\n",
      static_cast<unsigned long long>(heap),
      events > 0 ? static_cast<double>(heap) / static_cast<double>(events) : 0.0,
      static_cast<unsigned long long>(pool_allocs),
      static_cast<unsigned long long>(pool_reuses),
      acquires > 0 ? 100.0 * static_cast<double>(pool_reuses) / static_cast<double>(acquires)
                   : 0.0);
}
}  // namespace detail

inline void header(const std::string& id, const std::string& title,
                   const std::string& note = "") {
  [[maybe_unused]] static const bool instrumented = [] {
    detail::bench_start = std::chrono::steady_clock::now();
    std::atexit(detail::print_perf_trailer);
    return true;
  }();
  std::printf("\n==== %s: %s ====\n", id.c_str(), title.c_str());
  if (!note.empty()) std::printf("     %s\n", note.c_str());
}

/// Box summary of completed download times, "min/q1/med/q3/max" in seconds.
inline std::string box_s(const std::vector<RunResult>& rs) {
  return experiment::fmt_box(experiment::download_time_summary(rs), "");
}

inline std::string mean_s(const std::vector<RunResult>& rs) {
  const Summary s = experiment::download_time_summary(rs);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f±%.2f", s.mean, s.stderr_mean);
  return buf;
}

/// Prints one CCDF line: n, min, p50/p75/p90/p99 and max of the sample (ms).
inline void print_ccdf_row(const std::string& label, const std::vector<double>& samples) {
  if (samples.empty()) {
    std::printf("%-22s (no samples)\n", label.c_str());
    return;
  }
  const Ccdf c{samples};
  std::printf(
      "%-22s n=%-7zu min=%-7.1f p50=%-7.1f p75=%-7.1f p90=%-8.1f p99=%-8.1f max=%.1f\n",
      label.c_str(), c.n(), c.sorted_samples().front(), c.value_at_probability(0.5),
      c.value_at_probability(0.25), c.value_at_probability(0.1), c.value_at_probability(0.01),
      c.sorted_samples().back());
}

/// Mean ± stderr string over a per-run statistic.
inline std::string pm(const std::vector<double>& values, int precision = 2) {
  const Summary s = summarize(values);
  if (s.n == 0) return "-";
  return analysis::format_pm(s.mean, s.stderr_mean, precision);
}

}  // namespace mpr::bench
