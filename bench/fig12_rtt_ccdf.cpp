// Figure 12 — Packet-RTT distributions (CCDF) of MPTCP connections, per
// interface (WiFi vs each cellular carrier) and object size >= 512 KB.
//
// Paper shape: WiFi min ~15 ms, 90% below ~50 ms; AT&T min ~40 ms with most
// samples 50-200 ms; Verizon min ~32 ms but tail out to ~2 s; Sprint min
// ~50 ms with 98% above 100 ms and a multi-second tail for large objects.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 12", "Packet RTT CCDF of MPTCP connections (ms; tail quantiles)",
         "p50/p75/p90/p99 are the values exceeded with that probability inverted");
  const int n = reps(6);
  const std::vector<std::uint64_t> sizes{512 * kKB, 4 * kMB, 16 * kMB, 32 * kMB};

  for (const Carrier c : experiment::all_carriers()) {
    std::printf("\n-- WiFi + %s --\n", to_string(c).c_str());
    for (const std::uint64_t size : sizes) {
      RunConfig rc;
      rc.mode = PathMode::kMptcp2;
      rc.file_bytes = size;
      const auto rs = experiment::run_series(testbed_for(c), rc, n, 1313 + size);
      print_ccdf_row(to_string(c) + " " + experiment::fmt_size(size),
                     experiment::pooled_rtt_ms(rs, true));
      print_ccdf_row("wifi " + experiment::fmt_size(size),
                     experiment::pooled_rtt_ms(rs, false));
    }
  }
  std::printf("\nShape check: WiFi min lowest with a short tail; cellular minima\n"
              "higher with tails ordered Sprint > Verizon > AT&T.\n");
  return 0;
}
