// Figure 10 — Large flows: fraction of traffic routed through the cellular
// path (AT&T + home WiFi), per controller and path count.
//
// Paper shape: over 50% of the traffic moves to cellular in all
// configurations (its near-zero loss compensates its larger RTT).
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 10", "Large flows: cellular traffic fraction (AT&T + home WiFi)");
  const int n = reps(8);
  const std::vector<std::uint64_t> sizes{4 * kMB, 8 * kMB, 16 * kMB, 32 * kMB};
  const TestbedConfig tb = testbed_for(Carrier::kAtt);

  std::printf("%-16s", "config");
  for (const std::uint64_t s : sizes) std::printf("%10s", experiment::fmt_size(s).c_str());
  std::printf("\n");
  for (const PathMode mode : {PathMode::kMptcp2, PathMode::kMptcp4}) {
    for (const core::CcKind cc :
         {core::CcKind::kCoupled, core::CcKind::kOlia, core::CcKind::kReno}) {
      std::printf("%-16s", (to_string(mode) + "(" + core::to_string(cc) + ")").c_str());
      for (const std::uint64_t size : sizes) {
        RunConfig rc;
        rc.mode = mode;
        rc.cc = cc;
        rc.file_bytes = size;
        const auto rs = experiment::run_series(tb, rc, n, 1010 + size);
        std::printf("%9.0f%%", experiment::mean_cellular_fraction(rs) * 100.0);
      }
      std::printf("\n");
    }
  }
  std::printf("\nShape check: > 50%% cellular in every configuration; the coupled\n"
              "controllers shift more than uncoupled reno.\n");
  return 0;
}
