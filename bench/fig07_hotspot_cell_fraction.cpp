// Figure 7 — Coffee-shop hotspot: fraction of traffic carried by the
// cellular path (coupled and uncoupled reno MPTCP).
//
// Paper shape: more traffic shifts to cellular than in the home-WiFi
// setting (Fig 5) because the loaded public WiFi is unreliable and lossy.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 7", "Coffee shop: cellular traffic fraction");
  const int n = reps(12);
  const std::vector<std::uint64_t> sizes{8 * kKB, 64 * kKB, 512 * kKB, 4 * kMB};

  for (const bool hotspot : {true, false}) {
    std::printf("\n%s WiFi (MP-2):\n%-10s", hotspot ? "Public hotspot" : "Home", "cc");
    for (const std::uint64_t s : sizes) std::printf("%10s", experiment::fmt_size(s).c_str());
    std::printf("\n");
    for (const core::CcKind cc : {core::CcKind::kCoupled, core::CcKind::kReno}) {
      std::printf("%-10s", core::to_string(cc).c_str());
      for (const std::uint64_t size : sizes) {
        RunConfig rc;
        rc.mode = PathMode::kMptcp2;
        rc.cc = cc;
        rc.file_bytes = size;
        const auto rs =
            experiment::run_series(testbed_for(Carrier::kAtt, hotspot), rc, n, 770 + size);
        std::printf("%9.0f%%", experiment::mean_cellular_fraction(rs) * 100.0);
      }
      std::printf("\n");
    }
  }
  std::printf("\nShape check: hotspot rows >= home rows at each size (offload to the\n"
              "reliable cellular path under WiFi contention); coupled favours\n"
              "cellular more than reno as size grows.\n");
  return 0;
}
