// Table 4 — Coffee-shop path characteristics: single-path loss (%) and RTT
// (ms) of the public hotspot WiFi and AT&T LTE.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Table 4", "Coffee-shop single-path loss (%) and RTT (ms), mean±stderr",
         "paper: hotspot WiFi loss 2.9-5.3%, RTT 21-44ms; AT&T loss ~0-0.1, RTT 61-81ms");
  const int n = reps(12);
  const std::vector<std::uint64_t> sizes{8 * kKB, 64 * kKB, 512 * kKB, 4 * kMB};
  const char* paper_wifi_loss[] = {"5.3", "3.1", "4.1", "2.9"};
  const char* paper_wifi_rtt[] = {"44.2", "26.0", "21.9", "21.3"};
  const char* paper_att_loss[] = {"~", "~", "~", "0.1"};
  const char* paper_att_rtt[] = {"62.4", "63.4", "61.4", "80.8"};

  const TestbedConfig tb = testbed_for(Carrier::kAtt, /*hotspot=*/true);
  struct Row {
    const char* name;
    PathMode mode;
    bool cellular;
    const char** ploss;
    const char** prtt;
  };
  const Row rows[] = {
      {"WiFi(hotspot)", PathMode::kSingleWifi, false, paper_wifi_loss, paper_wifi_rtt},
      {"AT&T", PathMode::kSingleCellular, true, paper_att_loss, paper_att_rtt},
  };
  for (const Row& row : rows) {
    std::printf("\n%s:\n  %-8s %-18s %-8s %-20s %-8s\n", row.name, "size",
                "loss% (measured)", "(paper)", "RTT ms (measured)", "(paper)");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      RunConfig rc;
      rc.mode = row.mode;
      rc.file_bytes = sizes[i];
      const auto rs = experiment::run_series(tb, rc, n, 880 + sizes[i]);
      std::printf("  %-8s %-18s %-8s %-20s %-8s\n",
                  experiment::fmt_size(sizes[i]).c_str(),
                  pm(experiment::loss_rates_percent(rs, row.cellular)).c_str(), row.ploss[i],
                  pm(experiment::per_run_mean_rtt_ms(rs, row.cellular), 1).c_str(),
                  row.prtt[i]);
    }
  }
  std::printf("\nShape check: hotspot WiFi loss well above the home network's (~2x);\n"
              "AT&T unaffected by the WiFi-side load.\n");
  return 0;
}
