// Microbenchmarks (google-benchmark) for the hot paths of the simulator:
// event queue, reorder buffer, congestion-controller math, and a full
// end-to-end download as a macro smoke benchmark.
#include <benchmark/benchmark.h>

#include <functional>

#include "core/coupled_cc.h"
#include "core/reorder_buffer.h"
#include "experiment/run.h"
#include "net/link.h"
#include "net/packet_pool.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "sim/timing_wheel.h"
#include "tcp/seg_ring.h"

namespace {

using namespace mpr;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule_at(sim::TimePoint::from_ns(static_cast<std::int64_t>((i * 2654435761u) % n)),
                    [&sum, i] { sum += i; });
    }
    q.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_EventQueueCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      ids.push_back(q.schedule_after(sim::Duration::nanos(i), [] {}));
    }
    for (const sim::EventId id : ids) q.cancel(id);
    q.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_EventQueueCancel);

void BM_EventQueueBatchPop(benchmark::State& state) {
  // Many events per instant (fan-in heavy topologies): measures the batched
  // same-timestamp dispatch against the per-pop heap fixup it replaced.
  constexpr int kInstants = 1024;
  constexpr int kPerInstant = 16;
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t sum = 0;
    for (int t = 0; t < kInstants; ++t) {
      for (int i = 0; i < kPerInstant; ++i) {
        q.schedule_at(sim::TimePoint::from_ns(t * 1000), [&sum] { ++sum; });
      }
    }
    q.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kInstants *
                          kPerInstant);
}
BENCHMARK(BM_EventQueueBatchPop);

void BM_TimerWheelArmCancel(benchmark::State& state) {
  // The RTO pattern: every "ACK" cancels the pending far timer and re-arms
  // it, while near events keep the clock moving. Fired timers are the rare
  // exception; arm/cancel churn is the cost that matters.
  for (auto _ : state) {
    sim::EventQueue q;
    sim::EventId timer = sim::kInvalidEventId;
    int remaining = 4096;
    std::function<void()> ack = [&] {
      if (timer != sim::kInvalidEventId) q.cancel(timer);
      timer = q.schedule_after(sim::Duration::millis(200), [&] {
        timer = sim::kInvalidEventId;
      });
      if (--remaining > 0) q.schedule_after(sim::Duration::micros(100), ack);
    };
    q.schedule_at(sim::TimePoint::from_ns(0), [&] { ack(); });
    q.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_TimerWheelArmCancel);

void BM_UnackedTracking(benchmark::State& state) {
  // The sender's retransmission-state loop in isolation: append a flight of
  // MSS segments at snd_nxt, then retire it front-to-back on cumulative
  // ACKs, with a SACK-style ordered probe per flight. This is the pattern
  // unacked_ (tcp/seg_ring.h) sees on every RTT of a backlog transfer.
  struct Seg {
    std::uint32_t len{0};
    std::int64_t sent_ns{0};
    bool sacked{false};
    bool lost{false};
  };
  constexpr std::uint32_t kMss = 1400;
  constexpr int kFlight = 64;
  constexpr int kFlights = 256;
  for (auto _ : state) {
    tcp::SegRing<Seg> unacked;
    std::uint64_t snd_nxt = 1;
    std::uint64_t bytes = 0;
    for (int f = 0; f < kFlights; ++f) {
      for (int i = 0; i < kFlight; ++i) {
        unacked.push_back(snd_nxt, Seg{kMss, f, false, false});
        snd_nxt += kMss;
      }
      // One ordered probe per flight (SACK scan over the second half).
      const std::size_t mid = unacked.lower_bound(snd_nxt - kFlight / 2 * kMss);
      for (std::size_t i = mid; i < unacked.size(); ++i) {
        benchmark::DoNotOptimize(unacked.at(i).val.sacked);
      }
      // Cumulative ACK retires the whole flight.
      while (!unacked.empty() && unacked.front().seq + kMss <= snd_nxt) {
        bytes += unacked.front().val.len;
        unacked.pop_front();
      }
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kFlights * kFlight);
}
BENCHMARK(BM_UnackedTracking);

void BM_ReorderBufferInOrder(benchmark::State& state) {
  for (auto _ : state) {
    core::ReorderBuffer rb{8 << 20};
    for (std::uint64_t i = 0; i < 10000; ++i) {
      rb.insert(i * 1400, 1400, sim::TimePoint::from_ns(static_cast<std::int64_t>(i)), 0);
    }
    benchmark::DoNotOptimize(rb.delivered_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_ReorderBufferInOrder);

void BM_ReorderBufferInterleaved(benchmark::State& state) {
  // Two-path interleave: every second segment arrives one slot early.
  for (auto _ : state) {
    core::ReorderBuffer rb{8 << 20};
    for (std::uint64_t i = 0; i < 10000; i += 2) {
      rb.insert((i + 1) * 1400, 1400, sim::TimePoint::from_ns(static_cast<std::int64_t>(i)), 1);
      rb.insert(i * 1400, 1400, sim::TimePoint::from_ns(static_cast<std::int64_t>(i)), 0);
    }
    benchmark::DoNotOptimize(rb.ofo_samples().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_ReorderBufferInterleaved);

class BenchFlow final : public tcp::FlowCc {
 public:
  double cwnd_bytes() const override { return cwnd_; }
  void set_cwnd_bytes(double w) override { cwnd_ = w; }
  std::uint64_t ssthresh_bytes() const override { return 1000; }
  void set_ssthresh_bytes(std::uint64_t) override {}
  std::uint32_t mss() const override { return 1400; }
  sim::Duration srtt() const override { return sim::Duration::millis(50); }
  std::uint64_t bytes_in_flight() const override { return 1 << 20; }

 private:
  double cwnd_{100 * 1400.0};
};

template <typename Cc>
void BM_CongestionOnAck(benchmark::State& state) {
  Cc cc;
  BenchFlow flows[4];
  for (auto& f : flows) cc.register_flow(f);
  std::size_t i = 0;
  for (auto _ : state) {
    cc.on_ack(flows[i++ & 3], 1400);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CongestionOnAck<tcp::NewRenoCc>);
BENCHMARK(BM_CongestionOnAck<core::LiaCc>);
BENCHMARK(BM_CongestionOnAck<core::OliaCc>);

// Packet-path microbenches: the pool recycle loop and a saturated link.

void BM_PacketScan(benchmark::State& state) {
  // The queue-admission / drop-decision / energy-accounting pattern: walk a
  // population of in-flight packets reading wire_bytes() on each. With the
  // hot/cold split this touches only the first cache line per packet (cold
  // option sizes are cached at set/clear time); before it, the scan chased
  // seven std::optional members spread over the whole struct.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<net::Packet> packets(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::Packet& p = packets[i];
    p.payload_bytes = 1400;
    p.tcp.seq = i * 1400;
    net::DssOption& dss = p.tcp.ensure_dss();
    dss.dsn = i * 1400;
    dss.length = 1400;
    if (i % 16 == 0) p.tcp.set_mp_capable(net::MpCapableOption{1, 2});  // rare cold option
    if (i % 4 == 0) p.tcp.sack.push_back(net::SackBlock{0, 1400});
  }
  for (auto _ : state) {
    std::uint64_t bytes = 0;
    for (const net::Packet& p : packets) bytes += p.wire_bytes();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["sizeof_Packet"] = sizeof(net::Packet);
  state.counters["sizeof_TcpSegment"] = sizeof(net::TcpSegment);
}
BENCHMARK(BM_PacketScan)->Arg(1024)->Arg(65536);

void BM_SegmentOptionAccess(benchmark::State& state) {
  // The receive-side process_options pattern: every packet is interrogated
  // for its DSS mapping, and the cold options only behind the one-byte
  // has_any_option() gate. Packets alternate data (DSS only) and bare ACKs.
  constexpr std::size_t kPackets = 4096;
  std::vector<net::Packet> packets(kPackets);
  for (std::size_t i = 0; i < kPackets; ++i) {
    net::Packet& p = packets[i];
    if (i % 2 == 0) {
      p.payload_bytes = 1400;
      net::DssOption& dss = p.tcp.ensure_dss();
      dss.dsn = i * 1400;
      dss.length = 1400;
      dss.has_data_ack = true;
      dss.data_ack = i * 700;
    }
    if (i % 64 == 0) p.tcp.set_add_addr(net::AddAddrOption{net::IpAddr{9}, 1});
  }
  for (auto _ : state) {
    std::uint64_t dsn_sum = 0;
    std::uint64_t cold_hits = 0;
    for (net::Packet& p : packets) {
      if (const net::DssOption* dss = p.tcp.dss()) dsn_sum += dss->dsn;
      if (p.tcp.has_any_option()) {
        if (p.tcp.mp_capable() != nullptr) ++cold_hits;
        if (p.tcp.mp_join() != nullptr) ++cold_hits;
        if (p.tcp.add_addr() != nullptr) ++cold_hits;
        if (p.tcp.remove_addr() != nullptr) ++cold_hits;
        if (p.tcp.mp_prio() != nullptr) ++cold_hits;
        if (p.tcp.mp_fail() != nullptr) ++cold_hits;
      }
    }
    benchmark::DoNotOptimize(dsn_sum);
    benchmark::DoNotOptimize(cold_hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kPackets);
}
BENCHMARK(BM_SegmentOptionAccess);

void BM_PacketPoolAcquireRelease(benchmark::State& state) {
  net::PacketPool pool;
  // Prime: steady state never sees a pool miss.
  { net::PacketPtr warm = pool.acquire(); }
  for (auto _ : state) {
    net::PacketPtr p = pool.acquire();
    p->payload_bytes = 1400;
    benchmark::DoNotOptimize(p.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketPoolAcquireRelease);

void BM_LinkPacketPath(benchmark::State& state) {
  // Serialize-and-deliver 10k packets through one Link per iteration:
  // enqueue, service, propagation, delivery — the per-hop hot path.
  constexpr int kPackets = 10000;
  for (auto _ : state) {
    sim::Simulation sim;
    net::PacketPool& pool = sim.service<net::PacketPool>();
    std::uint64_t delivered = 0;
    net::Link link{sim,
                   net::Link::Config{.name = "bench",
                                     .rate_bps = 1e9,
                                     .prop_delay = sim::Duration::micros(50),
                                     .queue_capacity_bytes = 64 * 1024 * 1024},
                   [&delivered](net::PacketPtr p) { delivered += p->payload_bytes; }};
    for (int i = 0; i < kPackets; ++i) {
      net::PacketPtr p = pool.acquire();
      p->payload_bytes = 1400;
      link.send(std::move(p));
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kPackets);
}
BENCHMARK(BM_LinkPacketPath);

void BM_FullDownloadMptcp2(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    experiment::TestbedConfig tb;
    tb.seed = seed++;
    experiment::RunConfig rc;
    rc.mode = experiment::PathMode::kMptcp2;
    rc.file_bytes = bytes;
    const experiment::RunResult r = experiment::run_download(tb, rc);
    benchmark::DoNotOptimize(r.download_time_s);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FullDownloadMptcp2)->Arg(512 * 1024)->Arg(4 << 20)->Unit(benchmark::kMillisecond);

// The acceptance-criteria bench: a 32 MB two-path download with backlog-style
// settings (no slow-start cliff at this size), reported as events/sec.
void BM_BacklogDownload32MB(benchmark::State& state) {
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    experiment::TestbedConfig tb;
    tb.seed = seed++;
    experiment::RunConfig rc;
    rc.mode = experiment::PathMode::kMptcp2;
    rc.cc = core::CcKind::kReno;
    rc.file_bytes = 32ull << 20;
    rc.timeout = sim::Duration::seconds(7200);
    const std::uint64_t before = sim::EventQueue::total_executed();
    const experiment::RunResult r = experiment::run_download(tb, rc);
    events += sim::EventQueue::total_executed() - before;
    benchmark::DoNotOptimize(r.download_time_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items=events");
}
BENCHMARK(BM_BacklogDownload32MB)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
