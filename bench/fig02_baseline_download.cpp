// Figure 2 — Baseline download times: single-path TCP over WiFi and each
// cellular carrier vs 2-path MPTCP (coupled) per carrier, for 64 KB,
// 512 KB, 2 MB and 16 MB objects, aggregated over day periods.
//
// Paper shape: MPTCP tracks the best single path for every size; SP-WiFi
// wins small sizes (low RTT); LTE wins mid sizes (loss-free); for large
// sizes MPTCP at least matches the best path; Sprint 3G is far slowest.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 2", "Baseline download time (box: min/q1/median/q3/max, seconds)",
         "coupled controller; 2-path MPTCP = WiFi + carrier");
  const int n = reps(12);
  const std::vector<std::uint64_t> sizes{64 * kKB, 512 * kKB, 2 * kMB, 16 * kMB};

  for (const std::uint64_t size : sizes) {
    std::vector<MatrixEntry> entries;
    {
      RunConfig rc;
      rc.mode = PathMode::kSingleWifi;
      rc.file_bytes = size;
      entries.push_back({"SP-WiFi", testbed_for(Carrier::kAtt), rc});
    }
    for (const Carrier c : experiment::all_carriers()) {
      RunConfig sp;
      sp.mode = PathMode::kSingleCellular;
      sp.file_bytes = size;
      entries.push_back({"SP-" + to_string(c), testbed_for(c), sp});
      RunConfig mp;
      mp.mode = PathMode::kMptcp2;
      mp.file_bytes = size;
      entries.push_back({"MP-" + to_string(c), testbed_for(c), mp});
    }
    const auto results = experiment::run_matrix(entries, n, 20260707);

    std::printf("\n-- object size %s --\n", experiment::fmt_size(size).c_str());
    for (const MatrixEntry& e : entries) {
      std::printf("  %-12s %s\n", e.label.c_str(), box_s(results.at(e.label)).c_str());
    }
  }
  std::printf("\nShape check: MPTCP ~= best single path per size; WiFi best at 64KB;\n"
              "LTE competitive from 512KB; MP >= best SP at 16MB except Sprint.\n");
  return 0;
}
