// Figure 13 — Out-of-order delay distributions (CCDF) at the MPTCP receive
// buffer, per carrier pairing and object size.
//
// Paper shape: with AT&T/Verizon ~75% of packets arrive in order (zero
// delay); with Sprint ~75% are out of order, and >20% wait longer than the
// ~150 ms real-time interactivity budget.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 13", "Out-of-order delay CCDF at the receive buffer (ms)");
  const int n = reps(6);
  const std::vector<std::uint64_t> sizes{4 * kMB, 8 * kMB, 16 * kMB, 32 * kMB};

  for (const Carrier c : experiment::all_carriers()) {
    std::printf("\n-- WiFi + %s --\n", to_string(c).c_str());
    for (const std::uint64_t size : sizes) {
      RunConfig rc;
      rc.mode = PathMode::kMptcp2;
      rc.file_bytes = size;
      const auto rs = experiment::run_series(testbed_for(c), rc, n, 1414 + size);
      const auto ofo = experiment::pooled_ofo_ms(rs);
      std::size_t in_order = 0;
      std::size_t over_150 = 0;
      for (const double v : ofo) {
        if (v <= 1e-9) ++in_order;
        if (v > 150.0) ++over_150;
      }
      const double total = ofo.empty() ? 1.0 : static_cast<double>(ofo.size());
      std::printf("  %-6s in-order=%5.1f%%  >150ms=%5.1f%%  ",
                  experiment::fmt_size(size).c_str(),
                  static_cast<double>(in_order) / total * 100.0,
                  static_cast<double>(over_150) / total * 100.0);
      print_ccdf_row("", ofo);
    }
  }
  std::printf("\nShape check: LTE pairings mostly in-order; Sprint majority\n"
              "out-of-order with a heavy >150ms share (real-time budget blown).\n");
  return 0;
}
