// Figure 6 — Coffee-shop hotspot: download times over a loaded public WiFi
// (15-20 active customers) with AT&T LTE as the second path.
//
// Paper shape: WiFi is unreliable and not always the best path even for
// small sizes; MPTCP stays close to the best available path throughout.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 6", "Coffee-shop public WiFi: download time (box, seconds)",
         "loaded AP (background contention); olia omitted as in the paper");
  const int n = reps(12);
  const std::vector<std::uint64_t> sizes{8 * kKB, 64 * kKB, 512 * kKB, 4 * kMB};
  const TestbedConfig tb = testbed_for(Carrier::kAtt, /*hotspot=*/true);

  for (const std::uint64_t size : sizes) {
    std::vector<MatrixEntry> entries;
    for (const PathMode mode : {PathMode::kSingleWifi, PathMode::kSingleCellular}) {
      RunConfig rc;
      rc.mode = mode;
      rc.file_bytes = size;
      entries.push_back({to_string(mode), tb, rc});
    }
    for (const PathMode mode : {PathMode::kMptcp2, PathMode::kMptcp4}) {
      for (const core::CcKind cc : {core::CcKind::kCoupled, core::CcKind::kReno}) {
        RunConfig rc;
        rc.mode = mode;
        rc.cc = cc;
        rc.file_bytes = size;
        entries.push_back({to_string(mode) + "(" + core::to_string(cc) + ")", tb, rc});
      }
    }
    const auto results = experiment::run_matrix(entries, n, 660 + size);
    std::printf("\n-- object size %s --\n", experiment::fmt_size(size).c_str());
    for (const MatrixEntry& e : entries) {
      std::printf("  %-16s %s\n", e.label.c_str(), box_s(results.at(e.label)).c_str());
    }
  }
  std::printf("\nShape check: SP-WiFi highly variable and often beaten by SP-AT&T;\n"
              "MPTCP close to the best path at every size.\n");
  return 0;
}
