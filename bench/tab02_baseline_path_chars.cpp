// Table 2 — Baseline path characteristics: loss rate (%) and RTT (ms),
// sample mean ± standard error of single-path TCP, per carrier and size.
//
// Paper reference values are printed beside the measurements.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

namespace {
struct PaperRow {
  const char* loss[4];
  const char* rtt[4];
};
// Rows from Table 2 of the paper (64KB, 512KB, 2MB, 16MB).
const PaperRow kPaperAtt{{"0.03", "0.04", "0.06", "0.31"},
                         {"70.1", "104.9", "138.2", "126.0"}};
const PaperRow kPaperVzw{{"~", "~", "0.31", "1.75"}, {"92.4", "204.7", "422.6", "624.7"}};
const PaperRow kPaperSpr{{"0.37", "8.76", "3.93", "1.64"},
                         {"381.3", "972.4", "1209.8", "703.8"}};
const PaperRow kPaperWifi{{"0.43", "0.20", "2.02", "0.68"},
                          {"26.8", "53.1", "56.8", "32.7"}};
}  // namespace

int main() {
  header("Table 2", "Baseline single-path loss (%) and RTT (ms), mean±stderr",
         "'paper' columns give the values reported in the paper");
  const int n = reps(12);
  const std::vector<std::uint64_t> sizes{64 * kKB, 512 * kKB, 2 * kMB, 16 * kMB};

  struct Row {
    std::string name;
    TestbedConfig tb;
    PathMode mode;
    bool cellular;
    const PaperRow* paper;
  };
  const std::vector<Row> rows{
      {"AT&T", testbed_for(Carrier::kAtt), PathMode::kSingleCellular, true, &kPaperAtt},
      {"Verizon", testbed_for(Carrier::kVerizon), PathMode::kSingleCellular, true, &kPaperVzw},
      {"Sprint", testbed_for(Carrier::kSprint), PathMode::kSingleCellular, true, &kPaperSpr},
      {"Comcast", testbed_for(Carrier::kAtt), PathMode::kSingleWifi, false, &kPaperWifi},
  };

  for (const Row& row : rows) {
    std::printf("\n%s:\n  %-8s %-18s %-10s %-20s %-10s\n", row.name.c_str(), "size",
                "loss% (measured)", "(paper)", "RTT ms (measured)", "(paper)");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      RunConfig rc;
      rc.mode = row.mode;
      rc.file_bytes = sizes[i];
      const auto rs = experiment::run_series(row.tb, rc, n, 777 + sizes[i]);
      const auto loss = experiment::loss_rates_percent(rs, row.cellular);
      const auto rtt = experiment::per_run_mean_rtt_ms(rs, row.cellular);
      std::printf("  %-8s %-18s %-10s %-20s %-10s\n",
                  experiment::fmt_size(sizes[i]).c_str(), pm(loss).c_str(),
                  row.paper->loss[i], pm(rtt, 1).c_str(), row.paper->rtt[i]);
    }
  }
  std::printf("\nShape check: cellular loss lowest on LTE, highest on Sprint; WiFi\n"
              "RTT lowest and flat; cellular RTT grows with size (bufferbloat),\n"
              "Sprint >> Verizon > AT&T.\n");
  return 0;
}
