// Heap-allocation telemetry for the benches.
//
// alloc_interposer.cpp replaces the global operator new/delete with
// counting forwarders. It is compiled only into bench binaries (see
// bench/CMakeLists.txt) — the library code and tests run with the normal
// allocator — and costs one relaxed atomic increment per allocation.
//
// The [perf] trailer divides the process-wide count by events executed:
// after the zero-allocation hot-path work, steady-state packet forwarding
// performs no heap traffic, so allocs/event is dominated by campaign setup
// and result collection and should stay well below 1.
#pragma once

#include <cstdint>

namespace mpr::bench {

/// Number of global operator new calls so far in this process.
[[nodiscard]] std::uint64_t heap_allocations();

/// Total bytes requested through global operator new so far.
[[nodiscard]] std::uint64_t heap_bytes_allocated();

}  // namespace mpr::bench
