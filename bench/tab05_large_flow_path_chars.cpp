// Table 5 — Large-flow path characteristics: single-path loss (%) and RTT
// (ms) for home WiFi and AT&T LTE at 4 MB .. 32 MB.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Table 5", "Large-flow single-path loss (%) and RTT (ms), mean±stderr",
         "paper: WiFi 1.6-2.1% / 24-26ms; AT&T ~0-0.1% / 133-155ms");
  const int n = reps(8);
  const std::vector<std::uint64_t> sizes{4 * kMB, 8 * kMB, 16 * kMB, 32 * kMB};
  const char* paper_wifi_loss[] = {"2.1", "1.6", "1.9", "2.0"};
  const char* paper_wifi_rtt[] = {"26.2", "25.9", "24.9", "23.5"};
  const char* paper_att_loss[] = {"0.1", "~", "~", "~"};
  const char* paper_att_rtt[] = {"133.1", "154.5", "144.5", "146.4"};

  const TestbedConfig tb = testbed_for(Carrier::kAtt);
  struct Row {
    const char* name;
    PathMode mode;
    bool cellular;
    const char** ploss;
    const char** prtt;
  };
  const Row rows[] = {
      {"WiFi", PathMode::kSingleWifi, false, paper_wifi_loss, paper_wifi_rtt},
      {"AT&T", PathMode::kSingleCellular, true, paper_att_loss, paper_att_rtt},
  };
  for (const Row& row : rows) {
    std::printf("\n%s:\n  %-8s %-18s %-8s %-20s %-8s\n", row.name, "size",
                "loss% (measured)", "(paper)", "RTT ms (measured)", "(paper)");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      RunConfig rc;
      rc.mode = row.mode;
      rc.file_bytes = sizes[i];
      const auto rs = experiment::run_series(tb, rc, n, 1111 + sizes[i]);
      std::printf("  %-8s %-18s %-8s %-20s %-8s\n",
                  experiment::fmt_size(sizes[i]).c_str(),
                  pm(experiment::loss_rates_percent(rs, row.cellular)).c_str(), row.ploss[i],
                  pm(experiment::per_run_mean_rtt_ms(rs, row.cellular), 1).c_str(),
                  row.prtt[i]);
    }
  }
  std::printf("\nShape check: WiFi loss stable 1-2%% with low flat RTT; AT&T stays\n"
              "near loss-free with RTT inflated past ~100ms for all large sizes.\n");
  return 0;
}
