// Figure 9 — Large-flow download times (4/8/16/32 MB): single path vs
// MP-2 / MP-4 under coupled, olia and uncoupled reno.
//
// Paper shape (AT&T + WiFi): MPTCP always beats the best single path; MP-4
// beats MP-2; reno is fastest (and unfair); olia slightly better than
// coupled (5-10% at 8-32 MB). In this reproduction olia's edge appears on
// the unstable carriers (Verizon/Sprint, extra section below) while on the
// stable AT&T profile olia ~ coupled — see EXPERIMENTS.md.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

namespace {

void run_section(const char* title, Carrier carrier, int n) {
  std::printf("\n--- %s ---\n", title);
  const std::vector<std::uint64_t> sizes{4 * kMB, 8 * kMB, 16 * kMB, 32 * kMB};
  const TestbedConfig tb = testbed_for(carrier);
  for (const std::uint64_t size : sizes) {
    std::vector<MatrixEntry> entries;
    for (const PathMode mode : {PathMode::kSingleWifi, PathMode::kSingleCellular}) {
      RunConfig rc;
      rc.mode = mode;
      rc.file_bytes = size;
      entries.push_back({to_string(mode), tb, rc});
    }
    for (const PathMode mode : {PathMode::kMptcp2, PathMode::kMptcp4}) {
      for (const core::CcKind cc :
           {core::CcKind::kCoupled, core::CcKind::kOlia, core::CcKind::kReno}) {
        RunConfig rc;
        rc.mode = mode;
        rc.cc = cc;
        rc.file_bytes = size;
        entries.push_back({to_string(mode) + "(" + core::to_string(cc) + ")", tb, rc});
      }
    }
    const auto results = experiment::run_matrix(entries, n, 909 + size);
    std::printf("\n-- object size %s --\n", experiment::fmt_size(size).c_str());
    for (const MatrixEntry& e : entries) {
      std::printf("  %-16s mean=%-12s box=%s\n", e.label.c_str(),
                  mean_s(results.at(e.label)).c_str(), box_s(results.at(e.label)).c_str());
    }
  }
}

}  // namespace

int main() {
  header("Figure 9", "Large-flow download time (seconds)");
  run_section("AT&T LTE + home WiFi (the paper's Fig 9 setting)", Carrier::kAtt, reps(8));
  run_section("Verizon LTE + home WiFi (olia-vs-coupled shows here)", Carrier::kVerizon,
              reps(8));
  std::printf("\nShape check: MPTCP < best SP at all sizes; MP-4 < MP-2; reno fastest;\n"
              "olia <= coupled on the unstable carrier.\n");
  return 0;
}
