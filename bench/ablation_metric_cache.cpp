// Ablation — per-destination TCP metric caching (§3.1): the paper disables
// Linux's tcp_metrics cache because "an earlier connection to a particular
// destination encountering a sequence of losses" curses all later short
// flows to that destination with a tiny initial ssthresh.
//
// Scenario: a burst of heavy loss hits the WiFi path while a large transfer
// runs (poisoning the cache), then a series of fresh short connections
// fetch 256 KB objects. With caching they start slow; without (the paper's
// setting) they slow-start normally.
#include <memory>

#include "app/http.h"
#include "common.h"
#include "experiment/testbed.h"
#include "tcp/metrics_cache.h"

using namespace mpr;
using namespace mpr::bench;

namespace {

double short_flow_time_after_poisoning(bool use_cache, std::uint64_t seed) {
  experiment::TestbedConfig tb_cfg = testbed_for(Carrier::kAtt);
  tb_cfg.seed = seed;
  experiment::Testbed tb{tb_cfg};

  tcp::MetricsCache cache;
  tcp::TcpConfig cfg;
  if (use_cache) cfg.metrics_cache = &cache;

  app::TcpHttpServer server{tb.server(), experiment::kHttpPort, cfg,
                            [](std::uint64_t) { return 256ull << 10; }};

  // Phase 1: poison — a transfer through a 20% loss episode.
  tb.wifi_access().downlink().set_loss_model(
      std::make_unique<net::BernoulliLoss>(0.2, tb.sim().rng("burst")));
  {
    app::TcpHttpClient bad{tb.client(), cfg, experiment::kClientWifiAddr,
                           net::SocketAddr{experiment::kServerAddr1, experiment::kHttpPort}};
    bool done = false;
    bad.get(256 << 10, [&](const app::FetchResult&) { done = true; });
    const sim::TimePoint deadline = tb.sim().now() + sim::Duration::seconds(120);
    while (!done && tb.sim().now() < deadline && tb.sim().events().step()) {
    }
  }
  // Radio conditions recover fully.
  tb.wifi_access().downlink().set_loss_model(std::make_unique<net::NoLoss>());

  // Phase 2: five fresh short connections; measure their mean fetch time.
  double total = 0;
  for (int i = 0; i < 5; ++i) {
    app::TcpHttpClient c{tb.client(), cfg, experiment::kClientWifiAddr,
                         net::SocketAddr{experiment::kServerAddr1, experiment::kHttpPort}};
    bool done = false;
    sim::Duration took;
    c.get(256 << 10, [&](const app::FetchResult& r) {
      done = true;
      took = r.download_time();
    });
    const sim::TimePoint deadline = tb.sim().now() + sim::Duration::seconds(120);
    while (!done && tb.sim().now() < deadline && tb.sim().events().step()) {
    }
    total += took.to_seconds();
  }
  return total / 5.0;
}

}  // namespace

int main() {
  header("Ablation: tcp_metrics", "Per-destination ssthresh caching after a loss burst",
         "the paper disables caching (§3.1); this shows the harm it avoids");
  const int n = reps(6);
  for (const bool cache : {false, true}) {
    double sum = 0;
    for (int i = 0; i < n; ++i) {
      sum += short_flow_time_after_poisoning(cache, 6060 + static_cast<std::uint64_t>(i));
    }
    std::printf("  metric cache %-4s  mean 256KB fetch after loss burst: %.3f s\n",
                cache ? "on" : "off", sum / n);
  }
  std::printf("\nShape check: cached (poisoned) ssthresh slows every subsequent short\n"
              "flow to the destination, even though the path has fully recovered.\n");
  return 0;
}
