// Table 6 — MPTCP RTT and out-of-order delay (mean ± stderr) per carrier
// pairing for 4-32 MB objects.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Table 6", "MPTCP per-path RTT and OFO delay, mean±stderr (ms)",
         "paper RTT: AT&T 100-114, Verizon 228-399, Sprint 203-480, WiFi 29-56;\n"
         "     paper OFO: AT&T 13-31, Verizon 37-68, Sprint 91-302");
  const int n = reps(8);
  const std::vector<std::uint64_t> sizes{4 * kMB, 8 * kMB, 16 * kMB, 32 * kMB};

  std::printf("\nRTT (ms): cellular path of the MPTCP connection\n%-10s", "carrier");
  for (const std::uint64_t s : sizes) std::printf("%16s", experiment::fmt_size(s).c_str());
  std::printf("\n");

  // Cache results; OFO rows reuse the same runs.
  std::map<std::string, std::vector<std::vector<RunResult>>> cache;
  for (const Carrier c : experiment::all_carriers()) {
    auto& per_size = cache[to_string(c)];
    std::printf("%-10s", to_string(c).c_str());
    for (const std::uint64_t size : sizes) {
      RunConfig rc;
      rc.mode = PathMode::kMptcp2;
      rc.file_bytes = size;
      per_size.push_back(experiment::run_series(testbed_for(c), rc, n, 1515 + size));
      std::printf("%16s", pm(experiment::per_run_mean_rtt_ms(per_size.back(), true), 1).c_str());
    }
    std::printf("\n");
  }
  std::printf("%-10s", "WiFi");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%16s",
                pm(experiment::per_run_mean_rtt_ms(cache["AT&T"][i], false), 1).c_str());
  }
  std::printf("\n");

  std::printf("\nOFO delay (ms): connection-level reordering wait\n%-10s", "carrier");
  for (const std::uint64_t s : sizes) std::printf("%16s", experiment::fmt_size(s).c_str());
  std::printf("\n");
  for (const Carrier c : experiment::all_carriers()) {
    std::printf("%-10s", to_string(c).c_str());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::printf("%16s",
                  pm(experiment::per_run_mean_ofo_ms(cache[to_string(c)][i]), 1).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nShape check: RTT and OFO delay both ordered Sprint >= Verizon > AT&T;\n"
              "WiFi RTT flat and smallest.\n");
  return 0;
}
