// Table 7 / §6 — Video-streaming workloads over MPTCP: replays the
// measured Netflix/YouTube pattern (large prefetch + periodic blocks) over
// 2-path MPTCP and single-path WiFi and reports prefetch time, block fetch
// latency and late blocks (rebuffering risk).
#include "app/streaming.h"
#include "common.h"
#include "experiment/testbed.h"

using namespace mpr;
using namespace mpr::bench;

namespace {

struct SessionResult {
  double prefetch_s{0};
  Summary block_s;
  std::uint64_t late{0};
  std::uint64_t underruns{0};
  double underrun_s{0};
  std::uint64_t missed_frames{0};
  bool completed{false};
};

SessionResult run_session(const app::StreamingWorkload& wl, bool multipath, Carrier carrier,
                          std::uint64_t seed) {
  experiment::TestbedConfig tb_cfg = testbed_for(carrier);
  tb_cfg.seed = seed;
  experiment::Testbed tb{tb_cfg};
  core::MptcpConfig cfg;

  app::MptcpHttpServer server{tb.server(), experiment::kHttpPort, cfg, {},
                              [wl](std::uint64_t idx) { return wl.object_size(idx); }};
  std::vector<net::IpAddr> addrs{experiment::kClientWifiAddr};
  if (multipath) addrs.push_back(experiment::kClientCellAddr);
  app::MptcpHttpClient client{tb.client(), cfg, addrs,
                              net::SocketAddr{experiment::kServerAddr1, experiment::kHttpPort}};
  app::StreamingSession session{tb.sim(), client, wl};
  session.start();
  const sim::TimePoint deadline =
      tb.sim().now() + wl.period * static_cast<double>(wl.blocks + 4) +
      sim::Duration::seconds(600);
  while (!session.finished() && tb.sim().now() < deadline && tb.sim().events().step()) {
  }

  SessionResult out;
  out.completed = session.finished();
  if (!out.completed) return out;
  out.prefetch_s = session.result().prefetch_time.to_seconds();
  std::vector<double> blocks;
  for (const sim::Duration d : session.result().block_times) blocks.push_back(d.to_seconds());
  out.block_s = summarize(std::move(blocks));
  out.late = session.result().late_blocks;
  out.underruns = session.result().underruns;
  out.underrun_s = session.result().underrun_time.to_seconds();
  out.missed_frames = session.result().deadline_missed_frames;
  return out;
}

void run_workload(const char* name, app::StreamingWorkload wl, int n) {
  // Playback model for the deadline-miss metric: 24 fps video, so a block
  // carries period × 24 frames.
  wl.frames_per_block = static_cast<std::uint64_t>(wl.period.to_seconds() * 24.0);
  std::printf("\n-- %s (prefetch %.1fMB, block %.1fMB, period %.1fs, %llu blocks) --\n", name,
              static_cast<double>(wl.prefetch_bytes) / kMB,
              static_cast<double>(wl.block_bytes) / kMB, wl.period.to_seconds(),
              static_cast<unsigned long long>(wl.blocks));
  for (const bool multipath : {false, true}) {
    double prefetch = 0;
    double block_mean = 0;
    double block_max = 0;
    std::uint64_t late = 0;
    std::uint64_t underruns = 0;
    double underrun_s = 0;
    std::uint64_t missed = 0;
    int completed = 0;
    for (int i = 0; i < n; ++i) {
      const SessionResult r =
          run_session(wl, multipath, Carrier::kAtt, 1616 + static_cast<std::uint64_t>(i));
      if (!r.completed) continue;
      ++completed;
      prefetch += r.prefetch_s;
      block_mean += r.block_s.mean;
      block_max = std::max(block_max, r.block_s.max);
      late += r.late;
      underruns += r.underruns;
      underrun_s += r.underrun_s;
      missed += r.missed_frames;
    }
    if (completed == 0) {
      std::printf("  %-22s (no completed sessions)\n", multipath ? "MPTCP (WiFi+AT&T)" : "SP-WiFi");
      continue;
    }
    std::printf(
        "  %-22s prefetch=%6.2fs  block mean=%5.2fs max=%5.2fs  late=%llu/%llu  "
        "rebuffers=%llu (%.2fs)  missed frames=%llu\n",
        multipath ? "MPTCP (WiFi+AT&T)" : "SP-WiFi", prefetch / completed,
        block_mean / completed, block_max, static_cast<unsigned long long>(late),
        static_cast<unsigned long long>(wl.blocks * static_cast<std::uint64_t>(completed)),
        static_cast<unsigned long long>(underruns), underrun_s,
        static_cast<unsigned long long>(missed));
  }
}

}  // namespace

int main() {
  header("Table 7 / Section 6", "Streaming workloads over MPTCP",
         "workload parameters reproduce Table 7's measurements");
  const int n = reps(3);
  run_workload("Netflix iPad", app::StreamingWorkload::netflix_ipad(), n);
  run_workload("Netflix Android", app::StreamingWorkload::netflix_android(), n);
  run_workload("YouTube", app::StreamingWorkload::youtube(), n);
  std::printf("\nShape check: MPTCP cuts the prefetch time vs single-path WiFi and\n"
              "keeps periodic blocks comfortably inside their period.\n");
  return 0;
}
