#include "alloc_interposer.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

}  // namespace

namespace mpr::bench {

std::uint64_t heap_allocations() { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t heap_bytes_allocated() { return g_bytes.load(std::memory_order_relaxed); }

}  // namespace mpr::bench

void* operator new(std::size_t size) { return counted_alloc(size, alignof(std::max_align_t)); }
void* operator new[](std::size_t size) { return counted_alloc(size, alignof(std::max_align_t)); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
