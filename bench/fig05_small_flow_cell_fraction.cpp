// Figure 5 — Small flows: fraction of traffic carried by the cellular path
// for MP-2 and MP-4 (AT&T + home WiFi).
//
// Paper shape: zero below 64 KB (the transfer finishes before the joins can
// contribute; MP-4's two WiFi subflows make this stricter), rising towards
// ~50% at 4 MB.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 5", "Small flows: cellular traffic fraction (AT&T + home WiFi)");
  const int n = reps(12);
  const std::vector<std::uint64_t> sizes{8 * kKB, 64 * kKB, 512 * kKB, 4 * kMB};
  const TestbedConfig tb = testbed_for(Carrier::kAtt);

  std::printf("%-8s", "config");
  for (const std::uint64_t s : sizes) std::printf("%10s", experiment::fmt_size(s).c_str());
  std::printf("\n");
  for (const PathMode mode : {PathMode::kMptcp2, PathMode::kMptcp4}) {
    std::printf("%-8s", to_string(mode).c_str());
    for (const std::uint64_t size : sizes) {
      RunConfig rc;
      rc.mode = mode;
      rc.file_bytes = size;
      const auto rs = experiment::run_series(tb, rc, n, 505 + size);
      std::printf("%9.0f%%", experiment::mean_cellular_fraction(rs) * 100.0);
    }
    std::printf("\n");
  }
  std::printf("\nShape check: ~0%% at 8-64KB, rising with size, ~50%% or more at 4MB;\n"
              "MP-4 uses cellular less than MP-2 for small objects.\n");
  return 0;
}
