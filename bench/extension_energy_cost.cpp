// Extension (paper §6 future work) — energy cost of multipath: "the
// relationship between the desired MPTCP performance gain and the
// additional energy cost" of the second radio.
//
// Compares download time and device radio energy for single-path WiFi,
// single-path LTE, 2-path MPTCP and 2-path MPTCP with the cellular subflow
// in backup mode (RFC 6824 B bit), across object sizes.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Extension: energy", "Download time vs device radio energy (AT&T + home WiFi)",
         "energy: active airtime + RRC/PSM tail + idle, Huang et al. power model");
  const int n = reps(8);
  const std::vector<std::uint64_t> sizes{64 * kKB, 1 * kMB, 4 * kMB, 16 * kMB};
  const TestbedConfig tb = testbed_for(Carrier::kAtt);

  for (const std::uint64_t size : sizes) {
    std::vector<MatrixEntry> entries;
    {
      RunConfig rc;
      rc.mode = PathMode::kSingleWifi;
      rc.file_bytes = size;
      entries.push_back({"SP-WiFi", tb, rc});
      rc.mode = PathMode::kSingleCellular;
      entries.push_back({"SP-LTE", tb, rc});
      rc.mode = PathMode::kMptcp2;
      entries.push_back({"MP-2", tb, rc});
      rc.cellular_backup = true;
      entries.push_back({"MP-2 backup", tb, rc});
    }
    const auto results = experiment::run_matrix(entries, n, 3030 + size);
    std::printf("\n-- object size %s --\n", experiment::fmt_size(size).c_str());
    std::printf("  %-12s %-14s %-12s %-12s %-10s\n", "config", "time (mean)", "wifi J",
                "cell J", "total J");
    for (const MatrixEntry& e : entries) {
      const auto& rs = results.at(e.label);
      double wifi_j = 0;
      double cell_j = 0;
      int completed = 0;
      for (const RunResult& r : rs) {
        if (!r.completed) continue;
        ++completed;
        wifi_j += r.wifi_energy_j;
        cell_j += r.cellular_energy_j;
      }
      if (completed == 0) continue;
      wifi_j /= completed;
      cell_j /= completed;
      std::printf("  %-12s %-14s %-12.1f %-12.1f %-10.1f\n", e.label.c_str(),
                  mean_s(rs).c_str(), wifi_j, cell_j, wifi_j + cell_j);
    }
  }
  std::printf(
      "\nShape check: the LTE tail (~12 J) dominates small transfers — MPTCP's\n"
      "second radio is pure energy overhead there for little speedup. For large\n"
      "transfers MPTCP buys real time at sub-linear extra energy, and backup\n"
      "mode recovers most of the cellular energy while giving up the speedup.\n");
  return 0;
}
