// Extension — the bufferbloat counterfactual (§5.1): the paper traces the
// huge cellular RTTs to deep dumb drop-tail buffers. This bench re-runs the
// single-path and MPTCP measurements with CoDel on the cellular downlink
// and shows the trade: RTTs (and MPTCP's reordering delay) collapse, at a
// modest cost in loss/throughput.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Extension: CoDel", "Cellular bufferbloat vs CoDel AQM (8 MB downloads)");
  const int n = reps(8);

  for (const Carrier carrier : {Carrier::kVerizon, Carrier::kSprint}) {
    std::printf("\n-- %s --\n", to_string(carrier).c_str());
    std::printf("  %-22s %-14s %-14s %-12s %-12s\n", "config", "time (mean)", "cell RTT ms",
                "cell loss%", "mean OFO ms");
    for (const bool codel : {false, true}) {
      for (const PathMode mode : {PathMode::kSingleCellular, PathMode::kMptcp2}) {
        TestbedConfig tb = testbed_for(carrier);
        tb.cellular.codel_downlink = codel;
        RunConfig rc;
        rc.mode = mode;
        rc.file_bytes = 8 * kMB;
        const auto rs = experiment::run_series(tb, rc, n, 5050);
        const std::string label =
            std::string(codel ? "codel" : "droptail") + " " + to_string(mode);
        std::printf("  %-22s %-14s %-14s %-12s %-12s\n", label.c_str(), mean_s(rs).c_str(),
                    pm(experiment::per_run_mean_rtt_ms(rs, true), 0).c_str(),
                    pm(experiment::loss_rates_percent(rs, true)).c_str(),
                    mode == PathMode::kMptcp2
                        ? pm(experiment::per_run_mean_ofo_ms(rs), 1).c_str()
                        : "-");
      }
    }
  }
  std::printf("\nShape check: CoDel cuts the cellular RTT (and MPTCP's out-of-order\n"
              "delay) by a large factor at the cost of visible loss — the paper's\n"
              "bufferbloat diagnosis, inverted.\n");
  return 0;
}
