// Figure 8 — Simultaneous vs delayed SYN: download time of 2-path MPTCP
// when the MP_JOIN SYN is fired together with the initial SYN (§4.1.2
// modification) versus the standard delayed establishment.
//
// Paper shape: ~14% mean reduction at 512 KB, ~5% at 2 MB, negligible for
// very small objects (the initial window carries them entirely).
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 8", "Simultaneous vs delayed SYN (2-path MPTCP, coupled; seconds)",
         "paper: -14% at 512KB, -5% at 2MB, ~0 for tiny objects");
  const int n = reps(16);
  const std::vector<std::uint64_t> sizes{8 * kKB, 64 * kKB, 512 * kKB, 2 * kMB};
  const TestbedConfig tb = testbed_for(Carrier::kAtt);

  std::printf("%-8s %-16s %-16s %s\n", "size", "delayed (mean)", "simultaneous", "reduction");
  for (const std::uint64_t size : sizes) {
    // Paired runs: both establishment modes see the identical testbed
    // (same seed, same radio conditions), so the comparison isolates the
    // SYN scheduling instead of run-to-run path variation.
    std::vector<RunResult> delayed_rs;
    std::vector<RunResult> simsyn_rs;
    for (int i = 0; i < n; ++i) {
      TestbedConfig tbi = tb;
      tbi.seed = 808 + size + static_cast<std::uint64_t>(i) * 1315423911ull;
      RunConfig delayed;
      delayed.mode = PathMode::kMptcp2;
      delayed.file_bytes = size;
      RunConfig simultaneous = delayed;
      simultaneous.simultaneous_syns = true;
      delayed_rs.push_back(run_download(tbi, delayed));
      simsyn_rs.push_back(run_download(tbi, simultaneous));
    }
    const Summary d = experiment::download_time_summary(delayed_rs);
    const Summary s = experiment::download_time_summary(simsyn_rs);
    const double reduction = d.mean > 0 ? (d.mean - s.mean) / d.mean * 100.0 : 0.0;
    std::printf("%-8s %-16s %-16s %+.1f%%\n", experiment::fmt_size(size).c_str(),
                mean_s(delayed_rs).c_str(), mean_s(simsyn_rs).c_str(), -reduction);
  }
  std::printf("\nShape check: largest relative gain in the mid-size range (512KB-2MB),\n"
              "negligible at 8KB.\n");
  return 0;
}
