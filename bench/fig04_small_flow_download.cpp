// Figure 4 — Small-flow download times over AT&T LTE + home WiFi:
// single-path vs 2-path and 4-path MPTCP under coupled / olia / reno,
// for 8 KB, 64 KB, 512 KB and 4 MB objects.
//
// Paper shape: at 8 KB everything tracks SP-WiFi (cellular never joins in
// time); with growing size MP-4 > MP-2 > SP; controllers indistinguishable
// for small sizes.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 4", "Small-flow download time, AT&T + home WiFi (box, seconds)");
  const int n = reps(12);
  const std::vector<std::uint64_t> sizes{8 * kKB, 64 * kKB, 512 * kKB, 4 * kMB};
  const TestbedConfig tb = testbed_for(Carrier::kAtt);

  for (const std::uint64_t size : sizes) {
    std::vector<MatrixEntry> entries;
    for (const PathMode mode : {PathMode::kSingleWifi, PathMode::kSingleCellular}) {
      RunConfig rc;
      rc.mode = mode;
      rc.file_bytes = size;
      entries.push_back({to_string(mode), tb, rc});
    }
    for (const PathMode mode : {PathMode::kMptcp2, PathMode::kMptcp4}) {
      for (const core::CcKind cc :
           {core::CcKind::kCoupled, core::CcKind::kOlia, core::CcKind::kReno}) {
        RunConfig rc;
        rc.mode = mode;
        rc.cc = cc;
        rc.file_bytes = size;
        entries.push_back({to_string(mode) + "(" + core::to_string(cc) + ")", tb, rc});
      }
    }
    const auto results = experiment::run_matrix(entries, n, 404 + size);
    std::printf("\n-- object size %s --\n", experiment::fmt_size(size).c_str());
    for (const MatrixEntry& e : entries) {
      std::printf("  %-16s %s\n", e.label.c_str(), box_s(results.at(e.label)).c_str());
    }
  }
  std::printf("\nShape check: 8KB ~ SP-WiFi for all MPTCP variants; MP-4 <= MP-2 <= SP\n"
              "medians as size grows; controllers differ little below 4MB.\n");
  return 0;
}
