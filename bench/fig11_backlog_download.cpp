// Figure 11 — Infinite-backlog transfers (512 MB) with MP-2 / MP-4 under
// uncoupled reno and coupled: confirms the MP-4 advantage persists when
// slow-start effects are negligible.
//
// Paper: ~6-7 minute downloads, 10 iterations; MP-4 slightly faster than
// MP-2. We run fewer iterations by default (override with MPR_REPS).
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 11", "Infinite backlog (512 MB) download time (seconds)",
         "slow-start effects negligible at this size");
  const int n = reps(3);
  const TestbedConfig tb = testbed_for(Carrier::kAtt);

  std::vector<MatrixEntry> entries;
  for (const PathMode mode : {PathMode::kMptcp2, PathMode::kMptcp4}) {
    for (const core::CcKind cc : {core::CcKind::kReno, core::CcKind::kCoupled}) {
      RunConfig rc;
      rc.mode = mode;
      rc.cc = cc;
      rc.file_bytes = 512 * kMB;
      rc.timeout = sim::Duration::seconds(7200);
      entries.push_back({to_string(mode) + "(" + core::to_string(cc) + ")", tb, rc});
    }
  }
  const auto results = experiment::run_matrix(entries, n, 1212);
  for (const MatrixEntry& e : entries) {
    std::printf("  %-16s mean=%-12s box=%s\n", e.label.c_str(),
                mean_s(results.at(e.label)).c_str(), box_s(results.at(e.label)).c_str());
  }
  std::printf("\nShape check: MP-4 <= MP-2 for both controllers even with slow start\n"
              "amortized away; reno < coupled.\n");
  return 0;
}
