// Table 3 — Small-flow path characteristics: single-path loss (%) and RTT
// (ms) for home WiFi and AT&T LTE at 8 KB .. 4 MB.
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Table 3", "Small-flow single-path loss (%) and RTT (ms), mean±stderr",
         "paper: WiFi loss 1.0-2.1%, RTT 22-39ms; AT&T loss ~0, RTT 61-141ms");
  const int n = reps(12);
  const std::vector<std::uint64_t> sizes{8 * kKB, 64 * kKB, 512 * kKB, 4 * kMB};
  const char* paper_wifi_loss[] = {"1.0", "1.6", "1.4", "2.1"};
  const char* paper_wifi_rtt[] = {"22.3", "38.7", "33.9", "23.9"};
  const char* paper_att_loss[] = {"~", "~", "~", "~"};
  const char* paper_att_rtt[] = {"60.8", "64.9", "73.2", "140.9"};

  struct Row {
    const char* name;
    PathMode mode;
    bool cellular;
    const char** paper_loss;
    const char** paper_rtt;
  };
  const Row rows[] = {
      {"WiFi", PathMode::kSingleWifi, false, paper_wifi_loss, paper_wifi_rtt},
      {"AT&T", PathMode::kSingleCellular, true, paper_att_loss, paper_att_rtt},
  };

  const TestbedConfig tb = testbed_for(Carrier::kAtt);
  for (const Row& row : rows) {
    std::printf("\n%s:\n  %-8s %-18s %-8s %-20s %-8s\n", row.name, "size",
                "loss% (measured)", "(paper)", "RTT ms (measured)", "(paper)");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      RunConfig rc;
      rc.mode = row.mode;
      rc.file_bytes = sizes[i];
      const auto rs = experiment::run_series(tb, rc, n, 606 + sizes[i]);
      std::printf("  %-8s %-18s %-8s %-20s %-8s\n",
                  experiment::fmt_size(sizes[i]).c_str(),
                  pm(experiment::loss_rates_percent(rs, row.cellular)).c_str(),
                  row.paper_loss[i],
                  pm(experiment::per_run_mean_rtt_ms(rs, row.cellular), 1).c_str(),
                  row.paper_rtt[i]);
    }
  }
  std::printf("\nShape check: WiFi ~1-2%% loss / flat ~20-40ms RTT; AT&T near-zero\n"
              "loss / RTT growing with size.\n");
  return 0;
}
