// Ablations for the design choices called out in DESIGN.md §5:
//   * penalization on vs off (the paper removes it, §3.1)
//   * initial ssthresh 64 KB vs infinity on the cellular path (§3.1)
//   * packet scheduler: lowest-RTT vs round-robin vs weighted vs redundant
//   * connection receive buffer 8 MB vs small (reorder-limited regime)
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Ablation", "Design-choice ablations (2-path MPTCP, AT&T + home WiFi)");
  const int n = reps(8);
  const TestbedConfig tb = testbed_for(Carrier::kAtt);

  {
    std::printf("\n-- penalization (8 MB object, Sprint pairing, 256 KB rcvbuf) --\n");
    // Penalization matters when the receive buffer binds and one path lags:
    // use the 3G pairing with a modest buffer.
    const TestbedConfig tb3g = testbed_for(Carrier::kSprint);
    for (const bool pen : {false, true}) {
      RunConfig rc;
      rc.mode = PathMode::kMptcp2;
      rc.file_bytes = 8 * kMB;
      rc.receive_buffer = 256 * kKB;
      rc.penalization = pen;
      const auto rs = experiment::run_series(tb3g, rc, n, 2020);
      double penalizations = 0;
      for (const RunResult& r : rs) penalizations += static_cast<double>(r.penalizations);
      std::printf("  penalization=%-5s mean=%-12s (avg %.1f penalizations/run)\n",
                  pen ? "on" : "off", mean_s(rs).c_str(),
                  penalizations / static_cast<double>(rs.size()));
    }
    std::printf("  (the paper removes penalization; with an ample 8 MB buffer it\n"
                "   never triggers and only the small-buffer regime differs)\n");
  }

  {
    std::printf("\n-- initial ssthresh on the cellular path (4 MB object, SP-AT&T) --\n");
    for (const std::uint64_t ssthresh : {std::uint64_t{64 * kKB}, tcp::kInfiniteSsthresh}) {
      RunConfig rc;
      rc.mode = PathMode::kSingleCellular;
      rc.file_bytes = 4 * kMB;
      rc.ssthresh = ssthresh;
      const auto rs = experiment::run_series(tb, rc, n, 2121);
      const auto rtt = experiment::per_run_mean_rtt_ms(rs, true);
      std::printf("  ssthresh=%-8s mean=%-12s cell RTT=%sms\n",
                  ssthresh == tcp::kInfiniteSsthresh ? "inf" : "64KB", mean_s(rs).c_str(),
                  pm(rtt, 0).c_str());
    }
    std::printf("  (unbounded slow start on the loss-free path inflates RTT —\n"
                "   the very effect the paper capped ssthresh to avoid)\n");
  }

  {
    std::printf("\n-- scheduler policy (1 MB object) --\n");
    for (const core::SchedulerKind sched :
         {core::SchedulerKind::kMinRtt, core::SchedulerKind::kRoundRobin,
          core::SchedulerKind::kWeighted, core::SchedulerKind::kRedundant}) {
      RunConfig rc;
      rc.mode = PathMode::kMptcp2;
      rc.file_bytes = 1 * kMB;
      rc.scheduler = sched;
      // Weighted: favour the initial (WiFi) subflow 3:1 — the interesting
      // regime vs plain round-robin's implicit 1:1.
      if (sched == core::SchedulerKind::kWeighted) rc.scheduler_weights = {3.0, 1.0};
      const auto rs = experiment::run_series(tb, rc, n, 2222);
      double reinjections = 0;
      double duplicated = 0;
      for (const RunResult& r : rs) {
        reinjections += static_cast<double>(r.reinjections);
        duplicated += static_cast<double>(r.redundant_chunks);
      }
      std::printf(
          "  %-12s mean=%-12s cellular share=%.0f%% reinjections/run=%.1f"
          " duplicated chunks/run=%.1f\n",
          to_string(sched).c_str(), mean_s(rs).c_str(),
          experiment::mean_cellular_fraction(rs) * 100.0,
          reinjections / static_cast<double>(rs.size()),
          duplicated / static_cast<double>(rs.size()));
    }
    std::printf("  (redundant trades goodput for latency: every byte rides both\n"
                "   paths, so its duplicated-chunk count is the extra traffic)\n");
  }

  {
    std::printf("\n-- F-RTO (8 MB object, SP-Sprint: delay spikes fire spurious RTOs) --\n");
    const TestbedConfig tb3g = testbed_for(Carrier::kSprint);
    for (const bool frto : {false, true}) {
      RunConfig rc;
      rc.mode = PathMode::kSingleCellular;
      rc.file_bytes = 8 * kMB;
      rc.frto = frto;
      const auto rs = experiment::run_series(tb3g, rc, n, 2424);
      std::printf("  frto=%-5s mean=%-12s cell loss%%=%s\n", frto ? "on" : "off",
                  mean_s(rs).c_str(),
                  pm(experiment::loss_rates_percent(rs, true)).c_str());
    }
    std::printf("  (the paper's kernel shipped F-RTO disabled; a large share of the\n"
                "   3G 'loss rate' is spurious retransmission it would have avoided)\n");
  }

  {
    std::printf("\n-- connection receive buffer (8 MB object, Sprint pairing) --\n");
    const TestbedConfig tb3g = testbed_for(Carrier::kSprint);
    for (const std::uint64_t buf : {8 * kMB, 1 * kMB, 256 * kKB}) {
      RunConfig rc;
      rc.mode = PathMode::kMptcp2;
      rc.file_bytes = 8 * kMB;
      rc.receive_buffer = buf;
      const auto rs = experiment::run_series(tb3g, rc, n, 2323);
      std::printf("  rcvbuf=%-8s mean=%s\n", experiment::fmt_size(buf).c_str(),
                  mean_s(rs).c_str());
    }
    std::printf("  (a small shared buffer stalls the fast path behind reordering —\n"
                "   why the paper provisions 8 MB, §3.1)\n");
  }
  return 0;
}
