// Extension — fairness to competing traffic: the paper asserts that
// "TCP New Reno [as an MPTCP controller] performs better because it is
// more aggressive and not fair to other users" (§4.2) but never measures
// the victim. Here a regular single-path TCP user shares the WiFi AP with
// an MPTCP download and we measure what each controller costs them —
// RFC 6356's design goal, quantified.
//
// Setup: a second client host on the same WiFi access link runs a bulk
// single-path download while the MPTCP host runs a long bulk download over
// WiFi + AT&T LTE under each controller; both goodputs are measured over
// the same 20 s steady-state window.
#include <memory>

#include "app/http.h"
#include "common.h"
#include "experiment/testbed.h"

using namespace mpr;
using namespace mpr::bench;

namespace {

constexpr net::IpAddr kCompetitorAddr{3};

struct FairnessResult {
  double mptcp_time_s{0};  // repurposed: MPTCP goodput Mbit/s over the window
  double competitor_mbps{0};
};

FairnessResult run(std::optional<core::CcKind> cc, std::uint64_t seed) {
  experiment::TestbedConfig tb_cfg = testbed_for(Carrier::kAtt);
  tb_cfg.seed = seed;
  // Contention must be congestion-driven to expose the controllers'
  // fairness: strip the WiFi radio loss/background so the flows compete in
  // the AP queue (as in the controlled fairness testbeds of RFC 6356).
  tb_cfg.wifi.ge_down.reset();
  tb_cfg.wifi.loss_down = 0.0;
  tb_cfg.wifi.loss_up = 0.0;
  tb_cfg.wifi.rate_sigma = 0.0;
  tb_cfg.wifi.background.on_utilization = 0.0;
  tb_cfg.wifi.bg_up_utilization = 0.0;
  experiment::Testbed tb{tb_cfg};

  // Competitor: single-path TCP bulk download sharing the WiFi access link.
  net::Host competitor{tb.sim(), tb.network(), {kCompetitorAddr}};
  tb.network().set_access(kCompetitorAddr, &tb.wifi_access().uplink(),
                          &tb.wifi_access().downlink());
  tcp::TcpConfig tcfg;
  app::TcpHttpServer sp_server{tb.server(), 9090, tcfg,
                               [](std::uint64_t) { return 1ull << 30; }};
  app::TcpHttpClient sp_client{competitor, tcfg, kCompetitorAddr,
                               net::SocketAddr{experiment::kServerAddr1, 9090}};
  sp_client.get(1ull << 30, [](const app::FetchResult&) {});

  // MPTCP under test (absent => baseline: competitor alone).
  std::unique_ptr<app::MptcpHttpServer> mp_server;
  std::unique_ptr<app::MptcpHttpClient> mp_client;
  bool mp_done = !cc.has_value();
  app::FetchResult mp_fetch;
  if (cc) {
    core::MptcpConfig mcfg;
    mcfg.cc = *cc;
    mp_server = std::make_unique<app::MptcpHttpServer>(
        tb.server(), experiment::kHttpPort, mcfg, std::vector<net::IpAddr>{},
        [](std::uint64_t) { return 256ull << 20; });
    mp_client = std::make_unique<app::MptcpHttpClient>(
        tb.client(), mcfg,
        std::vector<net::IpAddr>{experiment::kClientWifiAddr, experiment::kClientCellAddr},
        net::SocketAddr{experiment::kServerAddr1, experiment::kHttpPort});
    mp_client->get(256ull << 20, [&](const app::FetchResult& r) {
      mp_done = true;
      mp_fetch = r;
    });
  }

  // Measure the competitor's goodput over a fixed 20 s window.
  constexpr double kWindowS = 20.0;
  tb.sim().run_until(sim::TimePoint::origin() + sim::Duration::from_seconds(kWindowS));
  FairnessResult out;
  out.competitor_mbps =
      static_cast<double>(sp_client.endpoint().metrics().bytes_received) * 8.0 / kWindowS /
      1e6;
  if (cc && mp_client) {
    // Steady-state MPTCP goodput over the same window.
    std::uint64_t mp_bytes = 0;
    for (const core::MptcpSubflow* sf : mp_client->connection().subflows()) {
      mp_bytes += sf->metrics().bytes_received;
    }
    out.mptcp_time_s = static_cast<double>(mp_bytes) * 8.0 / kWindowS / 1e6;
  }
  return out;
}

}  // namespace

int main() {
  header("Extension: fairness", "Cost of each MPTCP controller to a competing WiFi user",
         "competitor = bulk single-path TCP on the same (clean) AP; 20 s window");
  const int n = reps(6);

  struct Row {
    const char* label;
    std::optional<core::CcKind> cc;
  };
  const Row rows[] = {
      {"competitor alone", std::nullopt},
      {"vs MP-2 coupled", core::CcKind::kCoupled},
      {"vs MP-2 olia", core::CcKind::kOlia},
      {"vs MP-2 reno", core::CcKind::kReno},
  };

  double baseline = 0;
  std::printf("  %-18s %-22s %-18s\n", "scenario", "competitor goodput", "MPTCP goodput");
  for (const Row& row : rows) {
    double mbps = 0;
    double mp_time = 0;
    int mp_runs = 0;
    for (int i = 0; i < n; ++i) {
      const FairnessResult r = run(row.cc, 7070 + static_cast<std::uint64_t>(i));
      mbps += r.competitor_mbps;
      if (row.cc && r.mptcp_time_s > 0) {
        mp_time += r.mptcp_time_s;
        ++mp_runs;
      }
    }
    mbps /= n;
    if (!row.cc) baseline = mbps;
    char share[32] = "";
    if (row.cc && baseline > 0) {
      std::snprintf(share, sizeof share, " (%.0f%% of alone)", mbps / baseline * 100.0);
    }
    char mp[32] = "-";
    if (mp_runs > 0) std::snprintf(mp, sizeof mp, "%.2f Mbit/s", mp_time / mp_runs);
    std::printf("  %-18s %6.2f Mbit/s%-9s %-18s\n", row.label, mbps, share, mp);
  }
  std::printf("\nShape check: uncoupled reno grabs a full TCP-fair share of the AP\n"
              "(competitor down to ~half) while the coupled controllers shift load\n"
              "to LTE and leave the competitor most of its throughput, olia the\n"
              "most — RFC 6356's design goal, and the fairness cost behind the\n"
              "paper's remark that reno 'is not fair to other users' (§4.2).\n");
  return 0;
}
