// Figure 3 — Baseline: fraction of traffic carried by the cellular path in
// 2-path MPTCP connections, per carrier and object size.
//
// Paper shape: the fraction grows with object size (MPTCP offloads from the
// fast-but-lossy WiFi path to the loss-free cellular path); Sprint 3G stays
// low (its path is too slow to attract traffic).
#include "common.h"

using namespace mpr;
using namespace mpr::bench;

int main() {
  header("Figure 3", "Fraction of traffic carried by the cellular path (2-path MPTCP, coupled)");
  const int n = reps(12);
  const std::vector<std::uint64_t> sizes{64 * kKB, 512 * kKB, 2 * kMB, 16 * kMB};

  std::printf("%-10s", "carrier");
  for (const std::uint64_t s : sizes) std::printf("%10s", experiment::fmt_size(s).c_str());
  std::printf("\n");

  for (const Carrier c : experiment::all_carriers()) {
    std::printf("%-10s", to_string(c).c_str());
    for (const std::uint64_t size : sizes) {
      RunConfig rc;
      rc.mode = PathMode::kMptcp2;
      rc.file_bytes = size;
      const auto rs = experiment::run_series(testbed_for(c), rc, n, 333 + size);
      std::printf("%9.0f%%", experiment::mean_cellular_fraction(rs) * 100.0);
    }
    std::printf("\n");
  }
  std::printf("\nShape check: rises with size for LTE carriers (offload to the\n"
              "loss-free path); Sprint stays below ~30%%.\n");
  return 0;
}
